type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- rendering ------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

(* JSON has no encoding for nan/inf; they render as null.  [num]
   performs the same mapping at construction time so summaries built
   from constraint-free runs (margin = infinity) stay representable. *)
let num v = if Float.is_finite v then Num v else Null
let int v = Num (float_of_int v)

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v -> Buffer.add_string b (if Float.is_finite v then num_to_string v else "null")
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing --------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad (!pos, m))) fmt in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then incr pos
    else fail "expected %C" c
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "unexpected token"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= len then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= len then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape %S" hex
            | Some cp ->
              (* Basic-plane code points only; enough for our own output. *)
              if cp < 0x80 then Buffer.add_char b (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
              end);
            pos := !pos + 4
          | c -> fail "bad escape \\%c" c);
          incr pos;
          loop ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number %S" (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin incr pos; Obj [] end
      else begin
        let kvs = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          kvs := (k, v) :: !kvs;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !kvs)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin incr pos; Arr [] end
      else begin
        let vs = ref [] in
        let rec elements () =
          let v = parse_value () in
          vs := v :: !vs;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !vs)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after the JSON value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

(* --- accessors ------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function
  | Num v -> Some v
  | Null -> Some nan  (* null is how non-finite numbers round-trip *)
  | _ -> None

let to_int = function Num v when Float.is_integer v -> Some (int_of_float v) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None
