type record = { q_t_s : float; q_sample : Router.quality_sample }

let magic = "BGRQ1\n"
let header_bytes = String.length magic
let default_filename = "quality.bgrq"

let kind_code = function
  | Router.Q_cadence -> 0
  | Router.Q_pass -> 1
  | Router.Q_phase -> 2

let kind_of_code = function
  | 0 -> Router.Q_cadence
  | 1 -> Router.Q_pass
  | _ -> Router.Q_phase

(* --- encoding -------------------------------------------------------- *)

(* One frame per sample: [u32 len | payload | u32 crc32(payload)], all
   integers big-endian, floats as IEEE-754 bit patterns.  The payload
   is self-describing (length-prefixed phase and criterion strings,
   counted arrays), so readers need no side table — unlike the deletion
   journal there is no fixed payload length. *)

let add_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let add_short_string b s =
  let s = if String.length s > 255 then String.sub s 0 255 else s in
  Buffer.add_uint8 b (String.length s);
  Buffer.add_string b s

let clamp_u16 v = if v < 0 then 0 else if v > 0xFFFF then 0xFFFF else v

let encode_payload (r : record) =
  let s = r.q_sample in
  let b = Buffer.create 128 in
  Buffer.add_uint8 b (kind_code s.Router.qs_kind);
  add_short_string b s.qs_phase;
  Buffer.add_uint16_be b (clamp_u16 s.qs_pass);
  Buffer.add_int64_be b (Int64.of_int s.qs_deletions);
  add_f64 b r.q_t_s;
  add_f64 b s.qs_worst_margin_ps;
  Buffer.add_int32_be b (Int32.of_int s.qs_worst_constraint);
  Buffer.add_int32_be b (Int32.of_int s.qs_violations);
  add_f64 b s.qs_total_negative_ps;
  add_f64 b s.qs_ep_slack_min_ps;
  add_f64 b s.qs_ep_slack_max_ps;
  Buffer.add_uint16_be b (clamp_u16 (Array.length s.qs_density));
  Array.iter (fun d -> Buffer.add_int32_be b (Int32.of_int d)) s.qs_density;
  let crit = if List.length s.qs_criteria > 255 then [] else s.qs_criteria in
  Buffer.add_uint8 b (List.length crit);
  List.iter
    (fun (name, count) ->
      add_short_string b name;
      Buffer.add_int32_be b (Int32.of_int count))
    crit;
  Buffer.add_uint16_be b (clamp_u16 (Array.length s.qs_margins));
  Array.iter (fun m -> add_f64 b m) s.qs_margins;
  Buffer.contents b

let encode_frame r =
  let payload = encode_payload r in
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_be b (Int32.of_int (Crc32.string payload));
  Buffer.contents b

exception Malformed of string

let decode_payload s pos len =
  let limit = pos + len in
  let p = ref pos in
  let need n what =
    if !p + n > limit then raise (Malformed (Printf.sprintf "truncated %s" what))
  in
  let u8 what = need 1 what; let v = Char.code s.[!p] in incr p; v in
  let u16 what = need 2 what; let v = String.get_uint16_be s !p in p := !p + 2; v in
  let u32 what =
    need 4 what;
    let v = Int32.to_int (String.get_int32_be s !p) land 0xFFFFFFFF in
    p := !p + 4;
    v
  in
  let i32 what = need 4 what; let v = Int32.to_int (String.get_int32_be s !p) in p := !p + 4; v in
  let i64 what = need 8 what; let v = Int64.to_int (String.get_int64_be s !p) in p := !p + 8; v in
  let f64 what =
    need 8 what;
    let v = Int64.float_of_bits (String.get_int64_be s !p) in
    p := !p + 8;
    v
  in
  let short_string what =
    let n = u8 what in
    need n what;
    let v = String.sub s !p n in
    p := !p + n;
    v
  in
  let qs_kind = kind_of_code (u8 "kind") in
  let qs_phase = short_string "phase" in
  let qs_pass = u16 "pass" in
  let qs_deletions = i64 "deletions" in
  let q_t_s = f64 "time" in
  let qs_worst_margin_ps = f64 "worst margin" in
  let qs_worst_constraint = i32 "worst constraint" in
  let qs_violations = u32 "violations" in
  let qs_total_negative_ps = f64 "total negative margin" in
  let qs_ep_slack_min_ps = f64 "endpoint slack min" in
  let qs_ep_slack_max_ps = f64 "endpoint slack max" in
  let n_density = u16 "density count" in
  let qs_density = Array.init n_density (fun _ -> u32 "density") in
  let n_crit = u8 "criterion count" in
  let qs_criteria =
    List.init n_crit (fun _ ->
        let name = short_string "criterion name" in
        let count = u32 "criterion count" in
        (name, count))
  in
  let n_margins = u16 "margin count" in
  let qs_margins = Array.init n_margins (fun _ -> f64 "margin") in
  if !p <> limit then
    raise (Malformed (Printf.sprintf "%d trailing bytes in record payload" (limit - !p)));
  { q_t_s;
    q_sample =
      { Router.qs_kind;
        qs_phase;
        qs_pass;
        qs_deletions;
        qs_worst_margin_ps;
        qs_worst_constraint;
        qs_total_negative_ps;
        qs_violations;
        qs_ep_slack_min_ps;
        qs_ep_slack_max_ps;
        qs_density;
        qs_criteria;
        qs_margins } }

(* --- writing --------------------------------------------------------- *)

type writer = {
  w_oc : out_channel;
  w_path : string;
  w_t0 : float;
  mutable w_appended : int;
  mutable w_closed : bool;
}

let create ~path =
  match open_out_bin path with
  | oc ->
    output_string oc magic;
    flush oc;
    { w_oc = oc; w_path = path; w_t0 = Obs.now_s (); w_appended = 0; w_closed = false }
  | exception Sys_error msg ->
    Bgr_error.raise_error ~phase:"analyze" ~file:path Bgr_error.Io_error "%s" msg

let append w sample =
  Fault.check ~phase:"analyze" "analyze.qlog";
  let r = { q_t_s = Obs.now_s () -. w.w_t0; q_sample = sample } in
  output_string w.w_oc (encode_frame r);
  flush w.w_oc;
  w.w_appended <- w.w_appended + 1;
  r

let appended w = w.w_appended
let path w = w.w_path

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    try flush w.w_oc; close_out_noerr w.w_oc with Sys_error _ -> ()
  end

(* --- reading --------------------------------------------------------- *)

type read_result = { records : record list; torn : bool; warnings : string list }

let get_u32 s pos = Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

(* The same salvage discipline as [Journal.read_string]: a damaged or
   incomplete {e final} frame is a torn tail (the process died
   mid-append) and is truncated away with a warning; damage anywhere
   before the final frame is corruption and a structured [Parse]
   error. *)
let read_string ?file s =
  let len = String.length s in
  if len < header_bytes || String.sub s 0 header_bytes <> magic then
    Error (Bgr_error.make ?file ~phase:"analyze" Bgr_error.Parse "not a bgr quality log")
  else begin
    let records = ref [] in
    let result = ref None in
    let finish ~torn ~warning =
      result :=
        Some
          (Ok
             { records = List.rev !records;
               torn;
               warnings = (match warning with None -> [] | Some w -> [ w ]) })
    in
    let fail fmt =
      Printf.ksprintf
        (fun m -> result := Some (Error (Bgr_error.make ?file ~phase:"analyze" Bgr_error.Parse "%s" m)))
        fmt
    in
    let pos = ref header_bytes in
    while !result = None do
      let p = !pos in
      if p = len then finish ~torn:false ~warning:None
      else if len - p < 4 then
        finish ~torn:true
          ~warning:
            (Some
               (Printf.sprintf
                  "quality log tail truncated at byte %d (partial length prefix discarded)" p))
      else begin
        let l = get_u32 s p in
        let frame_end = p + 4 + l + 4 in
        if l < 1 || l > 0xFFFFF then
          fail "quality log corrupt at byte %d: implausible record length %d" p l
        else if frame_end > len then
          finish ~torn:true
            ~warning:
              (Some
                 (Printf.sprintf "quality log tail truncated at byte %d (torn record discarded)"
                    p))
        else begin
          let crc = get_u32 s (p + 4 + l) in
          if Crc32.update 0 s (p + 4) l <> crc then begin
            if frame_end = len then
              finish ~torn:true
                ~warning:
                  (Some
                     (Printf.sprintf
                        "quality log tail truncated at byte %d (bad CRC on the final record)" p))
            else fail "quality log corrupt at byte %d: CRC mismatch before the final record" p
          end
          else begin
            match decode_payload s (p + 4) l with
            | r ->
              records := r :: !records;
              pos := frame_end
            | exception Malformed m -> fail "quality log corrupt at byte %d: %s" p m
          end
        end
      end
    done;
    Option.get !result
  end

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> read_string ~file:path s
  | exception Sys_error msg ->
    Error (Bgr_error.make ~file:path ~phase:"analyze" Bgr_error.Io_error "%s" msg)
