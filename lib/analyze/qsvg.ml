(* Hand-rolled SVG: every chart is a plain string of well-formed XML
   with no stylesheet, script or external reference, so the output
   renders identically in a browser, an <img> tag and a CI artifact
   viewer, and can be checked with any XML parser. *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let f v = Printf.sprintf "%.2f" v

let document ~w ~h body =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d \
     %d\" font-family=\"sans-serif\">\n\
     <rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"#ffffff\"/>\n\
     %s</svg>\n"
    w h w h w h body

let text ?(anchor = "start") ?(size = 11) ?(fill = "#333333") ?(rotate = None) x y s =
  let transform =
    match rotate with
    | None -> ""
    | Some deg -> Printf.sprintf " transform=\"rotate(%d %s %s)\"" deg (f x) (f y)
  in
  Printf.sprintf
    "<text x=\"%s\" y=\"%s\" font-size=\"%d\" fill=\"%s\" text-anchor=\"%s\"%s>%s</text>\n"
    (f x) (f y) size fill anchor transform (esc s)

let line ?(stroke = "#cccccc") ?(width = 1.0) ?(dash = "") x1 y1 x2 y2 =
  let dash = if dash = "" then "" else Printf.sprintf " stroke-dasharray=\"%s\"" dash in
  Printf.sprintf
    "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"%s\" stroke-width=\"%s\"%s/>\n"
    (f x1) (f y1) (f x2) (f y2) stroke (f width) dash

let rect ?(fill = "#000000") ?(title = "") x y w h =
  if title = "" then
    Printf.sprintf "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"%s\"/>\n" (f x)
      (f y) (f w) (f h) fill
  else
    Printf.sprintf
      "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"%s\"><title>%s</title></rect>\n"
      (f x) (f y) (f w) (f h) fill (esc title)

let polyline ~stroke pts =
  match pts with
  | [] -> ""
  | _ ->
    let coords =
      String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%s,%s" (f x) (f y)) pts)
    in
    Printf.sprintf
      "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n" coords
      stroke

let empty_chart ~title =
  document ~w:640 ~h:120
    (text ~size:14 20.0 40.0 title ^ text ~size:12 ~fill:"#888888" 20.0 70.0 "no samples")

(* Value label for an axis tick: trim trailing noise. *)
let tick_label v =
  if Float.abs v >= 1000.0 || Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

(* A linear scale [lo, hi] -> pixel range, widened when degenerate. *)
let scale lo hi plo phi =
  let lo, hi = if hi -. lo < 1e-9 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
  fun v -> plo +. ((v -. lo) /. (hi -. lo) *. (phi -. plo))

let ticks lo hi n =
  let lo, hi = if hi -. lo < 1e-9 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
  List.init (n + 1) (fun i -> lo +. (float_of_int i *. (hi -. lo) /. float_of_int n))

(* --- convergence ----------------------------------------------------- *)

(* Two stacked panels over a shared deletion-count axis: margins (worst
   and total negative, ps) on top, violations and peak density below.
   Phase-boundary samples draw dashed verticals with the phase name. *)
let convergence (records : Qlog.record list) =
  if records = [] then empty_chart ~title:"Convergence"
  else begin
    let samples = List.map (fun (r : Qlog.record) -> r.Qlog.q_sample) records in
    let xs = List.map (fun (s : Router.quality_sample) -> float_of_int s.Router.qs_deletions) samples in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let w = 860 and h = 560 in
    let left = 80.0 and right = 840.0 in
    let panel1_top = 50.0 and panel1_bot = 270.0 in
    let panel2_top = 330.0 and panel2_bot = 520.0 in
    let sx = scale xmin xmax left right in
    let b = Buffer.create 4096 in
    let add s = Buffer.add_string b s in
    add (text ~size:15 left 24.0 "Convergence");
    (* Panel 1: margins. *)
    let finite =
      List.concat_map
        (fun (s : Router.quality_sample) ->
          List.filter Float.is_finite [ s.qs_worst_margin_ps; s.qs_total_negative_ps ])
        samples
    in
    (if finite = [] then add (text ~fill:"#888888" left (panel1_top +. 20.0) "no timing data")
     else begin
       let ymin = List.fold_left Float.min 0.0 finite in
       let ymax = List.fold_left Float.max 0.0 finite in
       let sy = scale ymin ymax panel1_bot panel1_top in
       List.iter
         (fun v ->
           add (line left (sy v) right (sy v));
           add (text ~anchor:"end" ~size:10 (left -. 6.0) (sy v +. 3.0) (tick_label v)))
         (ticks ymin ymax 5);
       add (line ~stroke:"#555555" ~width:1.2 left (sy 0.0) right (sy 0.0));
       let series get stroke =
         let pts =
           List.filter_map
             (fun (s : Router.quality_sample) ->
               let v = get s in
               if Float.is_finite v then Some (sx (float_of_int s.qs_deletions), sy v) else None)
             samples
         in
         add (polyline ~stroke pts)
       in
       series (fun s -> s.Router.qs_worst_margin_ps) "#4269d0";
       series (fun s -> s.Router.qs_total_negative_ps) "#ff725c";
       add (rect ~fill:"#4269d0" (left +. 10.0) (panel1_top -. 16.0) 10.0 10.0);
       add (text (left +. 25.0) (panel1_top -. 7.0) "worst margin (ps)");
       add (rect ~fill:"#ff725c" (left +. 170.0) (panel1_top -. 16.0) 10.0 10.0);
       add (text (left +. 185.0) (panel1_top -. 7.0) "total negative margin (ps)")
     end);
    (* Panel 2: violations and peak density share an integer scale. *)
    let vio = List.map (fun (s : Router.quality_sample) -> float_of_int s.qs_violations) samples in
    let den =
      List.map
        (fun (s : Router.quality_sample) ->
          float_of_int (Array.fold_left max 0 s.qs_density))
        samples
    in
    let ymax2 = List.fold_left Float.max 1.0 (vio @ den) in
    let sy2 = scale 0.0 ymax2 panel2_bot panel2_top in
    List.iter
      (fun v ->
        add (line left (sy2 v) right (sy2 v));
        add (text ~anchor:"end" ~size:10 (left -. 6.0) (sy2 v +. 3.0) (tick_label v)))
      (ticks 0.0 ymax2 4);
    add (polyline ~stroke:"#efb118" (List.map2 (fun x v -> (x, sy2 v)) (List.map sx xs) vio));
    add (polyline ~stroke:"#3ca951" (List.map2 (fun x v -> (x, sy2 v)) (List.map sx xs) den));
    add (rect ~fill:"#efb118" (left +. 10.0) (panel2_top -. 16.0) 10.0 10.0);
    add (text (left +. 25.0) (panel2_top -. 7.0) "violations");
    add (rect ~fill:"#3ca951" (left +. 120.0) (panel2_top -. 16.0) 10.0 10.0);
    add (text (left +. 135.0) (panel2_top -. 7.0) "peak density (tracks)");
    (* Shared x axis and phase boundaries. *)
    List.iter
      (fun v ->
        add (text ~anchor:"middle" ~size:10 (sx v) (panel2_bot +. 16.0) (tick_label v)))
      (ticks xmin xmax 6);
    add (text ~anchor:"middle" ((left +. right) /. 2.0) (panel2_bot +. 34.0) "deletions");
    List.iter
      (fun (s : Router.quality_sample) ->
        if s.qs_kind = Router.Q_phase then begin
          let x = sx (float_of_int s.qs_deletions) in
          add (line ~stroke:"#aaaaaa" ~dash:"4 3" x panel1_top x panel2_bot);
          add (text ~anchor:"end" ~size:9 ~fill:"#777777" ~rotate:(Some (-90)) x (panel1_top -. 2.0) s.qs_phase)
        end)
      samples;
    document ~w ~h (Buffer.contents b)
  end

(* --- density heatmap ------------------------------------------------- *)

let heat_color ~frac =
  (* white -> blue -> dark navy *)
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let lerp a bch = int_of_float (a +. ((bch -. a) *. frac)) in
  Printf.sprintf "#%02x%02x%02x" (lerp 255.0 20.0) (lerp 255.0 40.0) (lerp 255.0 120.0)

(* Channels on the y axis, samples in emission order on the x axis,
   cell colour = that channel's bridge density C_M at that sample. *)
let density_heatmap (records : Qlog.record list) =
  let grids =
    List.filter_map
      (fun (r : Qlog.record) ->
        let s = r.Qlog.q_sample in
        if Array.length s.Router.qs_density > 0 then Some s.Router.qs_density else None)
      records
  in
  if grids = [] then empty_chart ~title:"Channel density"
  else begin
    let n_samples = List.length grids in
    let n_channels = List.fold_left (fun acc d -> max acc (Array.length d)) 0 grids in
    let dmax = List.fold_left (fun acc d -> Array.fold_left max acc d) 1 grids in
    let left = 70.0 and top = 40.0 in
    let plot_w = 700.0 and plot_h = Float.max 80.0 (Float.min 420.0 (float_of_int n_channels *. 22.0)) in
    let w = 860 and h = int_of_float (top +. plot_h +. 70.0) in
    let cw = plot_w /. float_of_int n_samples in
    let ch = plot_h /. float_of_int n_channels in
    let b = Buffer.create 4096 in
    let add s = Buffer.add_string b s in
    add (text ~size:15 left 24.0 (Printf.sprintf "Channel density over the run (max %d tracks)" dmax));
    List.iteri
      (fun i d ->
        Array.iteri
          (fun c v ->
            let frac = float_of_int v /. float_of_int dmax in
            add
              (rect
                 ~fill:(heat_color ~frac)
                 ~title:(Printf.sprintf "sample %d channel %d: %d" i c v)
                 (left +. (float_of_int i *. cw))
                 (top +. (float_of_int c *. ch))
                 (cw +. 0.5) (ch +. 0.5)))
          d)
      grids;
    for c = 0 to n_channels - 1 do
      if n_channels <= 24 || c mod (n_channels / 12) = 0 then
        add
          (text ~anchor:"end" ~size:10 (left -. 6.0)
             (top +. ((float_of_int c +. 0.5) *. ch) +. 3.0)
             (string_of_int c))
    done;
    add (text ~anchor:"end" ~size:11 (left -. 30.0) (top +. (plot_h /. 2.0)) "ch");
    add (text ~anchor:"middle" (left +. (plot_w /. 2.0)) (top +. plot_h +. 28.0) "sample (emission order)");
    (* colour scale *)
    let sw = 120.0 in
    for i = 0 to 23 do
      add
        (rect
           ~fill:(heat_color ~frac:(float_of_int i /. 23.0))
           (left +. plot_w -. sw +. (float_of_int i *. sw /. 24.0))
           (top +. plot_h +. 38.0) (sw /. 24.0) 10.0)
    done;
    add (text ~anchor:"end" ~size:10 (left +. plot_w -. sw -. 6.0) (top +. plot_h +. 47.0) "0");
    add
      (text ~size:10 (left +. plot_w +. 4.0) (top +. plot_h +. 47.0) (string_of_int dmax));
    document ~w ~h (Buffer.contents b)
  end

(* --- slack waterfall ------------------------------------------------- *)

(* One horizontal bar per path constraint, sorted worst-first; negative
   margins (violations) in red to the left of the zero line. *)
let slack_waterfall (s : Quality.summary) =
  let margins =
    Array.to_list (Array.mapi (fun i m -> (i, m)) s.Quality.sm_margins)
    |> List.filter (fun (_, m) -> Float.is_finite m)
  in
  if margins = [] then empty_chart ~title:"Slack waterfall"
  else begin
    let margins = List.sort (fun (_, a) (_, b) -> Float.compare a b) margins in
    let n = List.length margins in
    let vmin = List.fold_left (fun acc (_, m) -> Float.min acc m) 0.0 margins in
    let vmax = List.fold_left (fun acc (_, m) -> Float.max acc m) 0.0 margins in
    let left = 90.0 and right = 800.0 and top = 50.0 in
    let bar_h = 18.0 and gap = 6.0 in
    let w = 860 and h = int_of_float (top +. (float_of_int n *. (bar_h +. gap)) +. 50.0) in
    let sx = scale vmin vmax left right in
    let b = Buffer.create 2048 in
    let add s = Buffer.add_string b s in
    add (text ~size:15 left 24.0 "Slack waterfall (final margin per constraint, ps)");
    List.iter
      (fun v ->
        add (line (sx v) top (sx v) (top +. (float_of_int n *. (bar_h +. gap))));
        add (text ~anchor:"middle" ~size:10 (sx v) (top -. 8.0) (tick_label v)))
      (ticks vmin vmax 6);
    add
      (line ~stroke:"#555555" ~width:1.2 (sx 0.0) top (sx 0.0)
         (top +. (float_of_int n *. (bar_h +. gap))));
    List.iteri
      (fun i (ci, m) ->
        let y = top +. (float_of_int i *. (bar_h +. gap)) in
        let x0 = Float.min (sx 0.0) (sx m) and x1 = Float.max (sx 0.0) (sx m) in
        let fill = if m < 0.0 then "#ff725c" else "#6cc5b0" in
        add (rect ~fill ~title:(Printf.sprintf "P%d: %.1f ps" ci m) x0 y (Float.max 1.0 (x1 -. x0)) bar_h);
        add (text ~anchor:"end" ~size:11 (left -. 8.0) (y +. 13.0) (Printf.sprintf "P%d" ci));
        let lx, anchor = if m < 0.0 then (x0 -. 4.0, "end") else (x1 +. 4.0, "start") in
        add (text ~anchor ~size:10 lx (y +. 13.0) (Printf.sprintf "%.1f" m)))
      margins;
    document ~w ~h (Buffer.contents b)
  end
