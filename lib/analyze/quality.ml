let schema = "bgr-quality-1"

type phase_stat = {
  ph_phase : string;
  ph_passes : int;
  ph_wall_s : float;
  ph_deletions : int;  (* cumulative deletions at the phase boundary *)
  ph_worst_margin_ps : float;
  ph_violations : int;
  ph_peak_density : int;
  ph_criteria : (string * int) list;
}

type summary = {
  sm_schema : string;
  sm_samples : int;
  sm_wall_s : float;
  sm_phases : phase_stat list;
  sm_criteria : (string * int) list;  (* run-total winning-criterion mix *)
  sm_final_worst_margin_ps : float;
  sm_final_worst_constraint : int;
  sm_final_total_negative_ps : float;
  sm_final_violations : int;
  sm_final_peak_density : int;
  sm_final_deletions : int;
  sm_final_ep_slack_min_ps : float;
  sm_final_ep_slack_max_ps : float;
  sm_margins : float array;  (* per-constraint margins of the last phase sample *)
}

let empty_summary =
  { sm_schema = schema;
    sm_samples = 0;
    sm_wall_s = 0.0;
    sm_phases = [];
    sm_criteria = [];
    sm_final_worst_margin_ps = nan;
    sm_final_worst_constraint = -1;
    sm_final_total_negative_ps = nan;
    sm_final_violations = 0;
    sm_final_peak_density = 0;
    sm_final_deletions = 0;
    sm_final_ep_slack_min_ps = nan;
    sm_final_ep_slack_max_ps = nan;
    sm_margins = [||] }

let peak a = Array.fold_left max 0 a

let merge_criteria tbl l =
  List.iter
    (fun (k, v) -> Hashtbl.replace tbl k (v + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    l

let dump_criteria tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Fold the record stream into per-phase segments: every [Q_phase]
   record closes the segment that accumulated since the previous
   boundary (the final post-metrology sample closes its own "metrology"
   segment).  Criterion counts are already deltas-since-last-sample at
   the source, so segment totals are plain sums. *)
let summarize (records : Qlog.record list) =
  match records with
  | [] -> empty_summary
  | _ ->
    let phases = ref [] in
    let seg_crit = Hashtbl.create 16 in
    let total_crit = Hashtbl.create 16 in
    let seg_passes = ref 0 in
    let seg_t0 = ref 0.0 in
    let last = ref (List.hd records) in
    let last_margins = ref [||] in
    List.iter
      (fun (r : Qlog.record) ->
        let s = r.Qlog.q_sample in
        merge_criteria seg_crit s.Router.qs_criteria;
        merge_criteria total_crit s.Router.qs_criteria;
        seg_passes := max !seg_passes s.qs_pass;
        if Array.length s.qs_margins > 0 then last_margins := s.qs_margins;
        (match s.qs_kind with
        | Router.Q_phase ->
          phases :=
            { ph_phase = s.qs_phase;
              ph_passes = !seg_passes;
              ph_wall_s = Float.max 0.0 (r.q_t_s -. !seg_t0);
              ph_deletions = s.qs_deletions;
              ph_worst_margin_ps = s.qs_worst_margin_ps;
              ph_violations = s.qs_violations;
              ph_peak_density = peak s.qs_density;
              ph_criteria = dump_criteria seg_crit }
            :: !phases;
          Hashtbl.reset seg_crit;
          seg_passes := 0;
          seg_t0 := r.q_t_s
        | Router.Q_cadence | Router.Q_pass -> ());
        last := r)
      records;
    let lr = !last in
    let ls = lr.Qlog.q_sample in
    { sm_schema = schema;
      sm_samples = List.length records;
      sm_wall_s = lr.q_t_s;
      sm_phases = List.rev !phases;
      sm_criteria = dump_criteria total_crit;
      sm_final_worst_margin_ps = ls.qs_worst_margin_ps;
      sm_final_worst_constraint = ls.qs_worst_constraint;
      sm_final_total_negative_ps = ls.qs_total_negative_ps;
      sm_final_violations = ls.qs_violations;
      sm_final_peak_density = peak ls.qs_density;
      sm_final_deletions = ls.qs_deletions;
      sm_final_ep_slack_min_ps = ls.qs_ep_slack_min_ps;
      sm_final_ep_slack_max_ps = ls.qs_ep_slack_max_ps;
      sm_margins = !last_margins }

(* --- JSON ------------------------------------------------------------ *)

let criteria_json l = Qjson.Obj (List.map (fun (k, v) -> (k, Qjson.int v)) l)

let phase_json p =
  Qjson.Obj
    [ ("phase", Qjson.Str p.ph_phase);
      ("passes", Qjson.int p.ph_passes);
      ("wall_s", Qjson.num p.ph_wall_s);
      ("deletions", Qjson.int p.ph_deletions);
      ("worst_margin_ps", Qjson.num p.ph_worst_margin_ps);
      ("violations", Qjson.int p.ph_violations);
      ("peak_density", Qjson.int p.ph_peak_density);
      ("criteria", criteria_json p.ph_criteria) ]

let json_of_summary s =
  Qjson.Obj
    [ ("schema", Qjson.Str s.sm_schema);
      ("samples", Qjson.int s.sm_samples);
      ("wall_s", Qjson.num s.sm_wall_s);
      ( "final",
        Qjson.Obj
          [ ("worst_margin_ps", Qjson.num s.sm_final_worst_margin_ps);
            ("worst_constraint", Qjson.int s.sm_final_worst_constraint);
            ("total_negative_ps", Qjson.num s.sm_final_total_negative_ps);
            ("violations", Qjson.int s.sm_final_violations);
            ("peak_density", Qjson.int s.sm_final_peak_density);
            ("deletions", Qjson.int s.sm_final_deletions);
            ("ep_slack_min_ps", Qjson.num s.sm_final_ep_slack_min_ps);
            ("ep_slack_max_ps", Qjson.num s.sm_final_ep_slack_max_ps) ] );
      ("margins_ps", Qjson.Arr (Array.to_list (Array.map Qjson.num s.sm_margins)));
      ("criteria", criteria_json s.sm_criteria);
      ("phases", Qjson.Arr (List.map phase_json s.sm_phases)) ]

let to_json s = Qjson.to_string (json_of_summary s)

exception Bad of string

let of_json_string ?file text =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  match
    let j =
      match Qjson.parse text with Ok j -> j | Error m -> fail "%s" m
    in
    let mem what k v = match Qjson.member k v with Some x -> x | None -> fail "missing key %S" what in
    let num what k v = match Qjson.to_float (mem what k v) with Some x -> x | None -> fail "key %S is not a number" what in
    let int_d what k v ~default =
      match Qjson.member k v with
      | None -> default
      | Some x -> ( match Qjson.to_int x with Some i -> i | None -> fail "key %S is not an integer" what)
    in
    let int what k v =
      match Qjson.to_int (mem what k v) with Some i -> i | None -> fail "key %S is not an integer" what
    in
    let str what k v =
      match Qjson.to_str (mem what k v) with Some s -> s | None -> fail "key %S is not a string" what
    in
    let criteria what v =
      match Qjson.to_obj v with
      | None -> fail "key %S is not an object" what
      | Some kvs ->
        List.map
          (fun (k, x) ->
            match Qjson.to_int x with
            | Some i -> (k, i)
            | None -> fail "criterion %S count is not an integer" k)
          kvs
    in
    let sm_schema = str "schema" "schema" j in
    if sm_schema <> schema then fail "unsupported quality schema %S (want %S)" sm_schema schema;
    let final = mem "final" "final" j in
    let phases =
      match Qjson.to_list (mem "phases" "phases" j) with
      | None -> fail "key \"phases\" is not an array"
      | Some l ->
        List.map
          (fun p ->
            { ph_phase = str "phases[].phase" "phase" p;
              ph_passes = int_d "phases[].passes" "passes" p ~default:0;
              ph_wall_s = num "phases[].wall_s" "wall_s" p;
              ph_deletions = int_d "phases[].deletions" "deletions" p ~default:0;
              ph_worst_margin_ps = num "phases[].worst_margin_ps" "worst_margin_ps" p;
              ph_violations = int_d "phases[].violations" "violations" p ~default:0;
              ph_peak_density = int_d "phases[].peak_density" "peak_density" p ~default:0;
              ph_criteria =
                (match Qjson.member "criteria" p with
                | None -> []
                | Some c -> criteria "phases[].criteria" c) })
          l
    in
    let margins =
      match Qjson.member "margins_ps" j with
      | None -> [||]
      | Some m -> (
        match Qjson.to_list m with
        | None -> fail "key \"margins_ps\" is not an array"
        | Some l ->
          Array.of_list
            (List.map
               (fun v ->
                 match Qjson.to_float v with
                 | Some f -> f
                 | None -> fail "margins_ps element is not a number")
               l))
    in
    { sm_schema;
      sm_samples = int_d "samples" "samples" j ~default:0;
      sm_wall_s = num "wall_s" "wall_s" j;
      sm_phases = phases;
      sm_criteria =
        (match Qjson.member "criteria" j with None -> [] | Some c -> criteria "criteria" c);
      sm_final_worst_margin_ps = num "final.worst_margin_ps" "worst_margin_ps" final;
      sm_final_worst_constraint = int_d "final.worst_constraint" "worst_constraint" final ~default:(-1);
      sm_final_total_negative_ps = num "final.total_negative_ps" "total_negative_ps" final;
      sm_final_violations = int "final.violations" "violations" final;
      sm_final_peak_density = int "final.peak_density" "peak_density" final;
      sm_final_deletions = int "final.deletions" "deletions" final;
      sm_final_ep_slack_min_ps = num "final.ep_slack_min_ps" "ep_slack_min_ps" final;
      sm_final_ep_slack_max_ps = num "final.ep_slack_max_ps" "ep_slack_max_ps" final;
      sm_margins = margins }
  with
  | s -> Ok s
  | exception Bad m -> Error (Bgr_error.make ?file ~phase:"analyze" Bgr_error.Parse "%s" m)

(* --- A/B diff -------------------------------------------------------- *)

type verdict = Pass | Regressed | Improved | Skipped

let verdict_string = function
  | Pass -> "PASS"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Skipped -> "skipped"

type check = {
  ck_metric : string;
  ck_a : string;
  ck_b : string;
  ck_verdict : verdict;
  ck_note : string;
}

let fnum v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v

(* Quality metrics where *smaller is worse* (margins): B regresses when
   it drops below A by more than the tolerance. *)
let higher_better ~tol metric a b =
  if Float.is_nan a || Float.is_nan b then
    { ck_metric = metric; ck_a = fnum a; ck_b = fnum b; ck_verdict = Skipped;
      ck_note = "not measured in both runs" }
  else if b < a -. tol then
    { ck_metric = metric; ck_a = fnum a; ck_b = fnum b; ck_verdict = Regressed;
      ck_note = Printf.sprintf "dropped by %.1f (tolerance %.1f)" (a -. b) tol }
  else if b > a +. tol then
    { ck_metric = metric; ck_a = fnum a; ck_b = fnum b; ck_verdict = Improved;
      ck_note = Printf.sprintf "up by %.1f" (b -. a) }
  else { ck_metric = metric; ck_a = fnum a; ck_b = fnum b; ck_verdict = Pass; ck_note = "" }

(* Counters where *larger is worse* (violations, density): any increase
   regresses. *)
let lower_better_int metric a b =
  let verdict = if b > a then Regressed else if b < a then Improved else Pass in
  { ck_metric = metric;
    ck_a = string_of_int a;
    ck_b = string_of_int b;
    ck_verdict = verdict;
    ck_note =
      (match verdict with
      | Regressed -> Printf.sprintf "+%d" (b - a)
      | Improved -> Printf.sprintf "-%d" (a - b)
      | _ -> "") }

let wall_check ~factor ~floor metric a b =
  if Float.is_nan a || Float.is_nan b then
    { ck_metric = metric; ck_a = fnum a; ck_b = fnum b; ck_verdict = Skipped;
      ck_note = "not measured in both runs" }
  else
    let limit = (a *. factor) +. floor in
    if b > limit then
      { ck_metric = metric;
        ck_a = Printf.sprintf "%.3f" a;
        ck_b = Printf.sprintf "%.3f" b;
        ck_verdict = Regressed;
        ck_note = Printf.sprintf "over %.3f s (%.1fx + %.1f s)" limit factor floor }
    else
      { ck_metric = metric;
        ck_a = Printf.sprintf "%.3f" a;
        ck_b = Printf.sprintf "%.3f" b;
        ck_verdict = Pass;
        ck_note = "" }

let diff ?(margin_tol_ps = 1e-3) ?(wall_factor = 1.5) ?(wall_floor_s = 1.0) a b =
  let base =
    [ higher_better ~tol:margin_tol_ps "worst margin (ps)" a.sm_final_worst_margin_ps
        b.sm_final_worst_margin_ps;
      higher_better ~tol:margin_tol_ps "total negative margin (ps)"
        a.sm_final_total_negative_ps b.sm_final_total_negative_ps;
      lower_better_int "violations" a.sm_final_violations b.sm_final_violations;
      lower_better_int "peak density (tracks)" a.sm_final_peak_density b.sm_final_peak_density;
      { ck_metric = "deletions";
        ck_a = string_of_int a.sm_final_deletions;
        ck_b = string_of_int b.sm_final_deletions;
        ck_verdict = Skipped;
        ck_note = "informational" } ]
  in
  let walls =
    wall_check ~factor:wall_factor ~floor:wall_floor_s "wall: total (s)" a.sm_wall_s b.sm_wall_s
    :: List.filter_map
         (fun (pb : phase_stat) ->
           match List.find_opt (fun pa -> pa.ph_phase = pb.ph_phase) a.sm_phases with
           | None -> None
           | Some pa ->
             Some
               (wall_check ~factor:wall_factor ~floor:wall_floor_s
                  (Printf.sprintf "wall: %s (s)" pb.ph_phase)
                  pa.ph_wall_s pb.ph_wall_s))
         b.sm_phases
  in
  base @ walls

let regressed checks = List.exists (fun c -> c.ck_verdict = Regressed) checks
