(** Zero-dependency SVG renderers for the quality explorers.  Every
    function returns one complete, well-formed, self-contained SVG
    document string (no stylesheet, script or external reference) —
    checkable with any XML parser and viewable as a plain file. *)

val convergence : Qlog.record list -> string
(** Two stacked panels over a shared deletion-count axis: worst and
    total-negative margin (ps) on top, violation count and peak channel
    density below, with dashed verticals at phase boundaries. *)

val density_heatmap : Qlog.record list -> string
(** Channels x samples grid, cell colour = that channel's bridge
    density [C_M] at that sample, with a colour scale. *)

val slack_waterfall : Quality.summary -> string
(** One horizontal bar per path constraint (final margins, sorted
    worst-first); violations extend red past the zero line. *)
