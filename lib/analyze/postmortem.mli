(** Crash-forensics bundle assembler: correlate every artifact a run or
    spool-job directory left behind — the flight recorder dump
    ([BGRF1]), the deletion journal tail, the quality log tail, the
    spool [JOB] manifest with its kill history, [RESULT]/[ERROR]
    verdict files and the per-attempt observability summaries — into
    one report with a single classifying {e verdict} line.

    The analyzer is deliberately forgiving: any artifact may be
    missing, torn or unparseable, and each such condition becomes a
    {e finding} rather than an error.  Only a directory that does not
    exist is an [Error].  It reads the spool [JOB] manifest with its
    own minimal parser (this library must not depend on the serving
    layer), accepting the [bgr-job 1] key-value format documented in
    docs/FORMATS.md. *)

(** One artifact the analyzer looked for. *)
type artifact = {
  a_file : string;  (** filename relative to the directory *)
  a_kind : string;  (** flight / journal / qlog / manifest / ... *)
  a_present : bool;
  a_bytes : int;  (** 0 when absent *)
  a_note : string;  (** salvage or parse note; [""] when clean *)
}

(** The spool [JOB] manifest, minimally parsed. *)
type job = {
  j_id : string;
  j_timing_driven : bool;
  j_deadline_ms : int;
  j_attempts : int;
  j_kills : int;
  j_last_kill : string;  (** [""] when never killed *)
  j_kill_history : string list;  (** oldest first *)
}

type report = {
  p_dir : string;
  p_verdict : string;
      (** machine-readable slug: [hang-in-<phase>], [oom-during-<phase>],
          [hard-deadline-in-<phase>], [canceled-in-<phase>],
          [signaled-in-<phase>], [deadline-stop-in-<phase>],
          [fault-stop-in-<phase>], [crash-after-commit-<K>],
          [torn-journal], [clean] or [inconclusive] *)
  p_headline : string;  (** one human sentence behind the verdict *)
  p_findings : string list;  (** supporting evidence, most damning first *)
  p_last_phase : string;  (** last phase any artifact witnessed; [""] unknown *)
  p_last_pass : int;  (** [0] outside improvement passes or unknown *)
  p_deletions : int;  (** best-known committed deletions; [-1] unknown *)
  p_worst_margin_ps : float;  (** last observed; [nan] unknown *)
  p_flight : Flight.dump option;
  p_flight_file : string;  (** [""] when no dump was found *)
  p_journal : Journal.read_result option;
  p_qlog : Qlog.read_result option;
  p_job : job option;  (** present only for spool job directories *)
  p_error_code : string;  (** [code] member of [ERROR]; [""] when none *)
  p_has_result : bool;  (** a [RESULT] verdict file exists *)
  p_artifacts : artifact list;
}

val analyze : dir:string -> (report, Bgr_error.t) result
(** Read everything the directory offers and classify.  [Error] only
    when [dir] is missing or not a directory. *)

val merged_events : report -> Flight.event list
(** All flight events across rings, oldest first (empty without a
    dump) — the timeline the SVG and the verdict classifier walk. *)

val to_json : report -> Qjson.t
(** The [postmortem.json] image: verdict, evidence, artifact survey
    and per-source tails, machine-checkable. *)

val timeline_svg : ?window_s:float -> report -> string
(** Self-contained SVG of the last [window_s] (default 30) seconds of
    flight events, one lane per event family, the dump moment at the
    right edge — "what was the process doing when it died".  Renders a
    placeholder panel when there is no flight dump. *)
