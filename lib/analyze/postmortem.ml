(* Forensic correlation of whatever a dead (or merely suspicious) run
   left on disk.  Everything here is read-only and forgiving: the
   whole point of a postmortem is that the process did NOT shut down
   cleanly, so torn tails, half-written files and absent artifacts are
   evidence to report, never reasons to fail. *)

let ( / ) = Filename.concat

type artifact = {
  a_file : string;
  a_kind : string;
  a_present : bool;
  a_bytes : int;
  a_note : string;
}

type job = {
  j_id : string;
  j_timing_driven : bool;
  j_deadline_ms : int;
  j_attempts : int;
  j_kills : int;
  j_last_kill : string;
  j_kill_history : string list;
}

type report = {
  p_dir : string;
  p_verdict : string;
  p_headline : string;
  p_findings : string list;
  p_last_phase : string;
  p_last_pass : int;
  p_deletions : int;
  p_worst_margin_ps : float;
  p_flight : Flight.dump option;
  p_flight_file : string;
  p_journal : Journal.read_result option;
  p_qlog : Qlog.read_result option;
  p_job : job option;
  p_error_code : string;
  p_has_result : bool;
  p_artifacts : artifact list;
}

(* --- raw file access --------------------------------------------------- *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Some s
  | exception Sys_error _ -> None

let file_bytes path = match Unix.stat path with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error _ -> 0

let list_dir dir =
  match Sys.readdir dir with
  | entries ->
    let l = Array.to_list entries in
    List.sort compare l
  | exception Sys_error _ -> []

(* --- the spool JOB manifest, minimally --------------------------------- *)

(* This library must stay below the serving layer, so the [bgr-job 1]
   key-value format (docs/FORMATS.md) is re-read here with a parser
   that extracts only what forensics needs and shrugs at the rest. *)
let parse_job s =
  let kv =
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" then None
           else
             match String.index_opt l ' ' with
             | None -> None
             | Some i ->
               Some (String.sub l 0 i, String.trim (String.sub l i (String.length l - i))))
  in
  match kv with
  | ("bgr-job", "1") :: _ ->
    let str k = Option.value (List.assoc_opt k kv) ~default:"" in
    let int k = Option.value (Option.bind (List.assoc_opt k kv) int_of_string_opt) ~default:0 in
    Some
      { j_id = str "id";
        j_timing_driven = str "timing_driven" = "true";
        j_deadline_ms = int "deadline_ms";
        j_attempts = int "attempts";
        j_kills = int "kills";
        j_last_kill = str "last_kill";
        j_kill_history =
          (match str "kill_history" with
          | "" -> []
          | h -> String.split_on_char ',' h) }
  | _ -> None

(* --- flight-dump discovery --------------------------------------------- *)

(* A spool job keeps one dump per attempt (flight-aN.bgrf); the latest
   attempt is the one that died last and is what the verdict wants.  A
   plain run directory has at most flight.bgrf. *)
let flight_candidate dir =
  let attempt_no name =
    match Scanf.sscanf_opt name "flight-a%d.bgrf%!" (fun n -> n) with
    | Some n -> Some (n, name)
    | None -> None
  in
  let attempts = List.filter_map attempt_no (list_dir dir) in
  match List.sort (fun (a, _) (b, _) -> compare b a) attempts with
  | (_, name) :: _ -> Some name
  | [] ->
    if Sys.file_exists (dir / Flight.default_filename) then Some Flight.default_filename
    else None

let merged_events r =
  match r.p_flight with
  | None -> []
  | Some d ->
    List.concat_map (fun rg -> rg.Flight.rg_events) d.Flight.f_rings
    |> List.stable_sort (fun a b -> compare a.Flight.e_t_us b.Flight.e_t_us)

(* --- what was the process doing? --------------------------------------- *)

(* Newest event that names a phase; 255 is the recorder's "unknown". *)
let last_phase_of_events events =
  let carries_phase e =
    let k = e.Flight.e_kind in
    k = Flight.k_deletion || k = Flight.k_phase || k = Flight.k_pass
    || k = Flight.k_heartbeat || k = Flight.k_stop
  in
  List.fold_left
    (fun acc e -> if carries_phase e && e.Flight.e_a <> 255 then Some e.Flight.e_a else acc)
    None events
  |> Option.map Flight.phase_name

let last_of pred events = List.fold_left (fun acc e -> if pred e then Some e else acc) None events

(* Every source counts the same monotonic deletion counter, so the
   best estimate is the largest value any of them witnessed. *)
let best_deletions events journal =
  let cand = ref (-1) in
  let consider v = if v > !cand then cand := v in
  List.iter
    (fun e ->
      let k = e.Flight.e_kind in
      if k = Flight.k_heartbeat then consider e.Flight.e_c
      else if k = Flight.k_deletion then consider ((e.Flight.e_d land 0xFFFFFFFF) + 1)
      else if k = Flight.k_phase || k = Flight.k_pass then consider e.Flight.e_d)
    events;
  (match journal with
  | Some (j : Journal.read_result) -> (
    match List.rev j.Journal.records with
    | (rec_, _) :: _ -> consider (rec_.Journal.r_deletions_before + 1)
    | [] -> ())
  | None -> ());
  !cand

(* --- verdict ----------------------------------------------------------- *)

let in_phase phase = match phase with "" -> "unknown" | p -> p

let classify ~job ~events ~flight ~journal ~error_code ~completed ~last_phase ~deletions =
  let phase = in_phase last_phase in
  let last_kill = match job with Some j -> j.j_last_kill | None -> "" in
  let flight_reason = match flight with Some (d : Flight.dump) -> d.Flight.f_reason | None -> "" in
  let starts p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  let stop = last_of (fun e -> e.Flight.e_kind = Flight.k_stop) events in
  let crashed =
    error_code <> ""
    || starts "error:" flight_reason
    || List.exists (fun e -> e.Flight.e_kind = Flight.k_error) events
  in
  let journal_torn = match journal with Some j -> j.Journal.torn | None -> false in
  if last_kill = "hang" then
    ( Printf.sprintf "hang-in-%s" phase,
      Printf.sprintf
        "the worker went heartbeat-silent during %s and was killed by the watchdog" phase )
  else if last_kill = "oom" || flight_reason = "oom" then
    ( Printf.sprintf "oom-during-%s" phase,
      Printf.sprintf "the worker ran out of memory during %s" phase )
  else if last_kill = "hard-deadline" then
    ( Printf.sprintf "hard-deadline-in-%s" phase,
      Printf.sprintf
        "the worker was alive but still routing past the hard wall deadline, in %s" phase )
  else if last_kill = "canceled" then
    ( Printf.sprintf "canceled-in-%s" phase,
      Printf.sprintf "an operator canceled the job while it was in %s" phase )
  else if starts "signal-" last_kill then
    ( Printf.sprintf "signaled-in-%s" phase,
      Printf.sprintf "the worker died to an external %s during %s" last_kill phase )
  else if crashed then begin
    let code = if error_code <> "" then error_code else
      match last_of (fun e -> e.Flight.e_kind = Flight.k_error) events with
      | Some _ -> "error"
      | None -> "error"
    in
    if deletions >= 0 then
      ( Printf.sprintf "crash-after-commit-%d" deletions,
        Printf.sprintf
          "the process raised a structured error (%s) after committing deletion %d, in %s"
          code deletions phase )
    else
      ( Printf.sprintf "crash-in-%s" phase,
        Printf.sprintf "the process raised a structured error (%s) during %s" code phase )
  end
  else
    match stop with
    | Some e when e.Flight.e_b = 1 ->
      ( Printf.sprintf "deadline-stop-in-%s" (Flight.phase_name e.Flight.e_a),
        Printf.sprintf "the router stopped at its soft deadline during %s — not a failure, \
                        but the run is incomplete"
          (Flight.phase_name e.Flight.e_a) )
    | Some e when e.Flight.e_b = 2 ->
      ( Printf.sprintf "fault-stop-in-%s" (Flight.phase_name e.Flight.e_a),
        Printf.sprintf "an injected fault stopped the router during %s"
          (Flight.phase_name e.Flight.e_a) )
    | _ ->
      if journal_torn then
        ( "torn-journal",
          "the journal ends mid-record — the process died inside an append, before any \
           other artifact recorded why" )
      else (
        match completed with
        | Some witness ->
          ("clean", Printf.sprintf "%s and no artifact shows distress" witness)
        | None ->
          if flight = None && journal = None then
            ("inconclusive", "no flight record and no journal — nothing to correlate")
          else
            ( "inconclusive",
              "no artifact records a failure, but nothing witnesses completion either" ))

(* --- analyze ----------------------------------------------------------- *)

let artifact ~dir ~kind ?(note = "") file =
  let p = dir / file in
  let present = Sys.file_exists p in
  { a_file = file; a_kind = kind;
    a_present = present;
    a_bytes = (if present then file_bytes p else 0);
    a_note = note }

let kind_of_name name =
  if Filename.check_suffix name ".bgrf" then "flight"
  else if name = "journal.bgrj" then "journal"
  else if name = Qlog.default_filename then "qlog"
  else if name = "snapshot.bgrs" then "snapshot"
  else if name = "design.bgr" then "design"
  else if name = "MANIFEST" then "manifest"
  else if name = "JOB" then "job"
  else if name = "RESULT" then "result"
  else if name = "ERROR" then "error"
  else if Scanf.sscanf_opt name "obs-a%d.json%!" (fun n -> n) <> None then "obs"
  else if Scanf.sscanf_opt name "trace-a%d.%s" (fun n _ -> n) <> None then "trace"
  else if Scanf.sscanf_opt name "metrics-a%d.%s" (fun n _ -> n) <> None then "metrics"
  else "other"

let analyze ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error
      (Bgr_error.make ~file:dir ~phase:"analyze" Bgr_error.Validate
         "postmortem wants a run or spool-job directory")
  else begin
    let findings = ref [] in
    let note f = Printf.ksprintf (fun m -> findings := m :: !findings) f in
    (* flight *)
    let flight_file, flight =
      match flight_candidate dir with
      | None ->
        note "no flight record (*.bgrf) found — was the process killed with SIGKILL before \
              it could dump, or did it predate the recorder?";
        ("", None)
      | Some name -> (
        match Flight.read ~path:(dir / name) with
        | Ok d ->
          List.iter (fun w -> note "flight %s: %s" name w) d.Flight.f_warnings;
          if d.Flight.f_torn then
            note "flight %s ends mid-frame: the process died while dumping" name;
          (name, Some d)
        | Error e ->
          note "flight %s is unreadable: %s" name (Bgr_error.to_string e);
          (name, None))
    in
    (* journal *)
    let journal =
      let p = dir / "journal.bgrj" in
      if not (Sys.file_exists p) then None
      else
        match Journal.read ~path:p with
        | Ok j ->
          List.iter (fun w -> note "journal: %s" w) j.Journal.warnings;
          Some j
        | Error e ->
          note "journal is unreadable: %s" (Bgr_error.to_string e);
          None
    in
    (* quality log *)
    let qlog =
      let p = dir / Qlog.default_filename in
      if not (Sys.file_exists p) then None
      else
        match Qlog.read ~path:p with
        | Ok q ->
          List.iter (fun w -> note "quality log: %s" w) q.Qlog.warnings;
          Some q
        | Error e ->
          note "quality log is unreadable: %s" (Bgr_error.to_string e);
          None
    in
    (* spool JOB manifest *)
    let jb =
      match read_file (dir / "JOB") with
      | None -> None
      | Some s -> (
        match parse_job s with
        | Some j ->
          if j.j_kills > 0 then
            note "the worker was killed %d time%s (%s)" j.j_kills
              (if j.j_kills = 1 then "" else "s")
              (String.concat ", " j.j_kill_history);
          Some j
        | None ->
          note "JOB manifest did not parse";
          None)
    in
    (* RESULT / ERROR verdicts *)
    let has_result = Sys.file_exists (dir / "RESULT") in
    let error_code =
      match read_file (dir / "ERROR") with
      | None -> ""
      | Some s -> (
        match Qjson.parse s with
        | Ok j ->
          let get k = Option.bind (Qjson.member k j) Qjson.to_str in
          let code = Option.value (get "code") ~default:"error" in
          (match get "message" with
          | Some m -> note "ERROR verdict: %s: %s" code m
          | None -> note "ERROR verdict: %s" code);
          code
        | Error msg ->
          note "ERROR verdict did not parse (%s)" msg;
          "error")
    in
    (* what the artifacts agree the process was doing *)
    let events =
      match flight with
      | None -> []
      | Some d ->
        List.concat_map (fun rg -> rg.Flight.rg_events) d.Flight.f_rings
        |> List.stable_sort (fun a b -> compare a.Flight.e_t_us b.Flight.e_t_us)
    in
    let qlog_last = Option.bind qlog (fun q -> match List.rev q.Qlog.records with
      | r :: _ -> Some r | [] -> None) in
    let last_phase =
      match last_phase_of_events events with
      | Some p -> p
      | None -> (
        match qlog_last with
        | Some r -> r.Qlog.q_sample.Router.qs_phase
        | None -> "")
    in
    let last_pass =
      match last_of (fun e ->
          e.Flight.e_kind = Flight.k_pass || e.Flight.e_kind = Flight.k_heartbeat) events with
      | Some e -> e.Flight.e_b
      | None -> (
        match qlog_last with Some r -> r.Qlog.q_sample.Router.qs_pass | None -> 0)
    in
    let deletions =
      let d = best_deletions events journal in
      match (d, qlog_last) with
      | -1, Some r -> r.Qlog.q_sample.Router.qs_deletions
      | d, Some r -> max d r.Qlog.q_sample.Router.qs_deletions
      | d, None -> d
    in
    let worst_margin =
      match last_of (fun e -> e.Flight.e_kind = Flight.k_heartbeat) events with
      | Some e -> Flight.margin_decode e.Flight.e_d
      | None -> (
        match qlog_last with
        | Some r -> r.Qlog.q_sample.Router.qs_worst_margin_ps
        | None -> nan)
    in
    (* cross-checks *)
    (match (flight, journal) with
    | Some _, Some j when events <> [] ->
      let jf = best_deletions events None and jj = best_deletions [] (Some j) in
      if jf >= 0 && jj >= 0 && jf < jj then
        note "the journal holds deletion %d but the flight record only saw %d — the \
              recorder's view is older than the last durable commit" (jj - 1) (jf - 1)
    | _ -> ());
    (match flight with
    | Some d ->
      let dropped =
        List.fold_left
          (fun acc rg -> acc + (rg.Flight.rg_total - List.length rg.Flight.rg_events))
          0 d.Flight.f_rings
      in
      if dropped > 0 then
        note "%d older flight events were overwritten by the ring (retained: the newest %d)"
          dropped
          (List.length events)
    | None -> ());
    (* artifact survey: everything present, plus the load-bearing
       absences *)
    let survey =
      let names = list_dir dir in
      let present =
        List.filter_map
          (fun name ->
            let p = dir / name in
            if Sys.is_directory p then None
            else Some { a_file = name; a_kind = kind_of_name name; a_present = true;
                        a_bytes = file_bytes p; a_note = "" })
          names
      in
      let absent kind file =
        if List.exists (fun a -> a.a_kind = kind) present then []
        else [ artifact ~dir ~kind ~note:"absent" file ]
      in
      present
      @ absent "flight" Flight.default_filename
      @ absent "journal" "journal.bgrj"
      @ absent "qlog" Qlog.default_filename
    in
    (* Completion witnesses: the spool's RESULT verdict, or — for a
       plain run directory — the quality log's final "metrology"
       sample, which the flow only emits after the audit passed. *)
    let completed =
      if has_result then Some "a RESULT verdict exists"
      else
        match qlog_last with
        | Some r when r.Qlog.q_sample.Router.qs_phase = "metrology" ->
          Some "the quality log ends with the final metrology sample"
        | _ -> None
    in
    let verdict, headline =
      classify ~job:jb ~events ~flight ~journal ~error_code ~completed ~last_phase ~deletions
    in
    (* A verdict that names a failure with a completion witness on
       disk means a retry won in the end — say so. *)
    let headline =
      let failure_prefixes =
        [ "hang-"; "oom-"; "hard-deadline-"; "canceled-"; "signaled-"; "crash-"; "fault-";
          "torn-" ]
      in
      let starts p =
        String.length verdict >= String.length p && String.sub verdict 0 (String.length p) = p
      in
      if completed <> None && List.exists starts failure_prefixes then
        headline ^ " (a later attempt recovered)"
      else headline
    in
    Ok
      { p_dir = dir;
        p_verdict = verdict;
        p_headline = headline;
        p_findings = List.rev !findings;
        p_last_phase = last_phase;
        p_last_pass = last_pass;
        p_deletions = deletions;
        p_worst_margin_ps = worst_margin;
        p_flight = flight;
        p_flight_file = flight_file;
        p_journal = journal;
        p_qlog = qlog;
        p_job = jb;
        p_error_code = error_code;
        p_has_result = has_result;
        p_artifacts = survey }
  end

(* --- postmortem.json --------------------------------------------------- *)

let event_json e =
  Qjson.Obj
    [ ("t_us", Qjson.int e.Flight.e_t_us);
      ("kind", Qjson.Str (Flight.kind_name e.Flight.e_kind));
      ("a", Qjson.int e.Flight.e_a); ("b", Qjson.int e.Flight.e_b);
      ("c", Qjson.int e.Flight.e_c); ("d", Qjson.int e.Flight.e_d) ]

let to_json r =
  let events = merged_events r in
  let tail =
    let n = List.length events in
    if n <= 200 then events
    else List.filteri (fun i _ -> i >= n - 200) events
  in
  Qjson.Obj
    [ ("schema", Qjson.Str "bgr-postmortem-1");
      ("dir", Qjson.Str r.p_dir);
      ("verdict", Qjson.Str r.p_verdict);
      ("headline", Qjson.Str r.p_headline);
      ("findings", Qjson.Arr (List.map (fun f -> Qjson.Str f) r.p_findings));
      ("last_phase", Qjson.Str r.p_last_phase);
      ("last_pass", Qjson.int r.p_last_pass);
      ("deletions", Qjson.int r.p_deletions);
      ("worst_margin_ps", Qjson.num r.p_worst_margin_ps);
      ( "flight",
        match r.p_flight with
        | None -> Qjson.Null
        | Some d ->
          Qjson.Obj
            [ ("file", Qjson.Str r.p_flight_file);
              ("reason", Qjson.Str d.Flight.f_reason);
              ("pid", Qjson.int d.Flight.f_pid);
              ("epoch_s", Qjson.num d.Flight.f_epoch_s);
              ("domains", Qjson.int (List.length d.Flight.f_rings));
              ("events", Qjson.int (List.length events));
              ( "recorded",
                Qjson.int
                  (List.fold_left (fun acc rg -> acc + rg.Flight.rg_total) 0 d.Flight.f_rings)
              );
              ("torn", Qjson.Bool d.Flight.f_torn) ] );
      ( "journal",
        match r.p_journal with
        | None -> Qjson.Null
        | Some j ->
          Qjson.Obj
            [ ("records", Qjson.int (List.length j.Journal.records));
              ("valid_bytes", Qjson.int j.Journal.valid_bytes);
              ("torn", Qjson.Bool j.Journal.torn) ] );
      ( "qlog",
        match r.p_qlog with
        | None -> Qjson.Null
        | Some q ->
          Qjson.Obj
            [ ("records", Qjson.int (List.length q.Qlog.records));
              ("torn", Qjson.Bool q.Qlog.torn) ] );
      ( "job",
        match r.p_job with
        | None -> Qjson.Null
        | Some j ->
          Qjson.Obj
            [ ("id", Qjson.Str j.j_id);
              ("timing_driven", Qjson.Bool j.j_timing_driven);
              ("deadline_ms", Qjson.int j.j_deadline_ms);
              ("attempts", Qjson.int j.j_attempts);
              ("kills", Qjson.int j.j_kills);
              ("last_kill", Qjson.Str j.j_last_kill);
              ("kill_history", Qjson.Arr (List.map (fun k -> Qjson.Str k) j.j_kill_history))
            ] );
      ("error_code", Qjson.Str r.p_error_code);
      ("has_result", Qjson.Bool r.p_has_result);
      ( "artifacts",
        Qjson.Arr
          (List.map
             (fun a ->
               Qjson.Obj
                 [ ("file", Qjson.Str a.a_file); ("kind", Qjson.Str a.a_kind);
                   ("present", Qjson.Bool a.a_present); ("bytes", Qjson.int a.a_bytes);
                   ("note", Qjson.Str a.a_note) ])
             r.p_artifacts) );
      ("events_tail", Qjson.Arr (List.map event_json tail)) ]

(* --- the last-N-seconds timeline --------------------------------------- *)

(* Minimal local SVG helpers (Qsvg keeps its primitives private, and
   this chart shares no geometry with the quality explorers). *)
let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fpx v = Printf.sprintf "%.2f" v

let lanes =
  [ ("phase/pass", [ Flight.k_phase; Flight.k_pass ], "#4c78a8");
    ("deletions", [ Flight.k_deletion ], "#54a24b");
    ("persist", [ Flight.k_journal_sync; Flight.k_snapshot ], "#9d755d");
    ("pool", [ Flight.k_pool_round ], "#b279a2");
    ("serve", [ Flight.k_serve_op; Flight.k_retry ], "#72b7b2");
    ("heartbeat", [ Flight.k_heartbeat ], "#eeca3b");
    ("worker", [ Flight.k_worker_spawn; Flight.k_worker_kill ], "#f58518");
    ("failure", [ Flight.k_stop; Flight.k_error; Flight.k_dump ], "#e45756") ]

let timeline_svg ?(window_s = 30.0) r =
  let w = 880 and left = 130.0 and top = 58.0 and row = 26.0 in
  let h = int_of_float (top +. (row *. float_of_int (List.length lanes)) +. 46.0) in
  let b = Buffer.create 4096 in
  let put fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  put
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d \
     %d\" font-family=\"sans-serif\">\n\
     <rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"#ffffff\"/>\n"
    w h w h w h;
  put "<text x=\"16\" y=\"24\" font-size=\"15\" fill=\"#222222\">flight timeline — %s</text>\n"
    (esc r.p_verdict);
  let events = merged_events r in
  (match (r.p_flight, events) with
  | None, _ | _, [] ->
    put
      "<text x=\"16\" y=\"46\" font-size=\"12\" fill=\"#888888\">no flight record — \
       nothing to draw</text>\n"
  | Some d, _ ->
    let t_end = List.fold_left (fun acc e -> max acc e.Flight.e_t_us) 0 events in
    let span_us = int_of_float (window_s *. 1e6) in
    let t_start = max 0 (t_end - span_us) in
    let visible = List.filter (fun e -> e.Flight.e_t_us >= t_start) events in
    put
      "<text x=\"16\" y=\"46\" font-size=\"12\" fill=\"#555555\">%s · dump reason: %s · pid \
       %d · last %.1fs, %d of %d events</text>\n"
      (esc (Filename.concat r.p_dir r.p_flight_file))
      (esc d.Flight.f_reason) d.Flight.f_pid
      (float_of_int (t_end - t_start) /. 1e6)
      (List.length visible) (List.length events);
    let x_of t =
      left
      +. (float_of_int (t - t_start) /. float_of_int (max 1 (t_end - t_start))
          *. (float_of_int w -. left -. 24.0))
    in
    (* second-granularity axis ticks *)
    let div = Stdlib.( / ) in
    let sec0 = div (t_start + 999_999) 1_000_000 and sec1 = div t_end 1_000_000 in
    let step = max 1 (div (sec1 - sec0) 8) in
    let axis_y = top +. (row *. float_of_int (List.length lanes)) +. 6.0 in
    let s = ref sec0 in
    while !s <= sec1 do
      let x = x_of (!s * 1_000_000) in
      put
        "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#dddddd\" \
         stroke-width=\"1.00\"/>\n"
        (fpx x) (fpx (top -. 6.0)) (fpx x) (fpx axis_y);
      put
        "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#888888\" \
         text-anchor=\"middle\">%ds</text>\n"
        (fpx x)
        (fpx (axis_y +. 14.0))
        !s;
      s := !s + step
    done;
    List.iteri
      (fun i (label, kinds, color) ->
        let y = top +. (row *. float_of_int i) in
        let mine = List.filter (fun e -> List.mem e.Flight.e_kind kinds) visible in
        put
          "<text x=\"%s\" y=\"%s\" font-size=\"11\" fill=\"#333333\" \
           text-anchor=\"end\">%s (%d)</text>\n"
          (fpx (left -. 10.0))
          (fpx (y +. 14.0))
          (esc label) (List.length mine);
        put
          "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#eeeeee\" \
           stroke-width=\"1.00\"/>\n"
          (fpx left)
          (fpx (y +. 10.0))
          (fpx (float_of_int w -. 24.0))
          (fpx (y +. 10.0));
        List.iter
          (fun e ->
            let x = x_of e.Flight.e_t_us in
            let title =
              Printf.sprintf "%s a=%d b=%d c=%d d=%d @%.3fs"
                (Flight.kind_name e.Flight.e_kind)
                e.Flight.e_a e.Flight.e_b e.Flight.e_c e.Flight.e_d
                (float_of_int e.Flight.e_t_us /. 1e6)
            in
            put
              "<rect x=\"%s\" y=\"%s\" width=\"2.00\" height=\"16.00\" \
               fill=\"%s\"><title>%s</title></rect>\n"
              (fpx (x -. 1.0))
              (fpx (y +. 2.0))
              color (esc title);
            (* phase entries get named so the lane reads as a story *)
            if e.Flight.e_kind = Flight.k_phase && e.Flight.e_b = 0 then
              put
                "<text x=\"%s\" y=\"%s\" font-size=\"9\" fill=\"#4c78a8\">%s</text>\n"
                (fpx (x +. 3.0))
                (fpx (y +. 8.0))
                (esc (Flight.phase_name e.Flight.e_a)))
          mine)
      lanes);
  put "</svg>\n";
  Buffer.contents b
