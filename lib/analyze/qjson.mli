(** A minimal JSON value type with a renderer and a strict
    recursive-descent parser — just enough for [quality.json] to be
    written by {!Quality.to_json} and read back by the A/B diff, with
    no external dependency.

    Non-finite floats have no JSON encoding: {!num} (and the renderer)
    map them to [null], and {!to_float} maps [null] back to [nan], so
    summaries of constraint-free runs (worst margin = infinity) survive
    a round trip as "not a number" rather than a parse error. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num : float -> t
(** [Num v], or [Null] when [v] is not finite. *)

val int : int -> t

val to_string : t -> string
(** Compact (single-line) rendering with full escaping. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document; the error carries the
    byte offset. *)

val member : string -> t -> t option

val to_float : t -> float option
(** [Null] reads as [nan]. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
