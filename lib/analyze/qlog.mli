(** The solution-quality event log ([.bgrq]): an append-only, CRC-framed
    binary stream of {!Router.quality_sample} records stamped with the
    run-relative wall-clock time of emission.

    The framing discipline is the deletion journal's ({!Journal}): a
    6-byte magic header followed by [u32 len | payload | u32 crc]
    frames, big-endian throughout, floats as IEEE-754 bit patterns.
    The payload itself is self-describing — length-prefixed phase and
    criterion strings, counted density/margin arrays — so the format
    survives designs of any channel or constraint count.

    Recovery on read follows the journal's rules: a damaged or
    incomplete {e final} frame is a torn tail (the recording process
    died mid-append), truncated away with a warning; damage anywhere
    earlier is a structured [Parse] error. *)

type record = {
  q_t_s : float;  (** seconds since the writer was opened *)
  q_sample : Router.quality_sample;
}

val magic : string
(** ["BGRQ1\n"] — file magic and format version. *)

val default_filename : string
(** ["quality.bgrq"] — the conventional name inside a run directory,
    next to the journal and snapshot. *)

(** {1 Writing} *)

type writer

val create : path:string -> writer
(** Create (truncate) the log and write the magic header.  Raises a
    structured [Io_error] when the file cannot be opened. *)

val append : writer -> Router.quality_sample -> record
(** Frame and append one sample, stamped with the time since
    {!create}, and flush it to the OS.  Subject to fault injection at
    site ["analyze.qlog"].  Returns the stamped record. *)

val appended : writer -> int
(** Samples appended so far. *)

val path : writer -> string

val close : writer -> unit
(** Flush and close; idempotent. *)

(** {1 Reading} *)

type read_result = {
  records : record list;  (** intact records, in emission order *)
  torn : bool;  (** a damaged final frame was truncated away *)
  warnings : string list;  (** human-readable salvage notes *)
}

val read_string : ?file:string -> string -> (read_result, Bgr_error.t) result
(** Decode a whole log image.  [file] labels errors. *)

val read : path:string -> (read_result, Bgr_error.t) result

(**/**)

val encode_frame : record -> string
(** Exposed for tests (corruption injection). *)
