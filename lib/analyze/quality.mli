(** Offline solution-quality analysis over a [.bgrq] event log
    ({!Qlog}): per-phase aggregation, the machine-readable
    [quality.json] summary, and the thresholded A/B run diff behind the
    regression gate. *)

val schema : string
(** ["bgr-quality-1"] — the [quality.json] schema tag. *)

type phase_stat = {
  ph_phase : string;
  ph_passes : int;  (** improvement passes the phase ran (0 for one-shot phases) *)
  ph_wall_s : float;  (** wall-clock from the previous phase boundary *)
  ph_deletions : int;  (** cumulative deletions at the phase boundary *)
  ph_worst_margin_ps : float;  (** worst constraint margin at the boundary *)
  ph_violations : int;
  ph_peak_density : int;  (** max per-channel bridge density at the boundary *)
  ph_criteria : (string * int) list;
      (** winning-criterion attribution of the phase's deletions *)
}

type summary = {
  sm_schema : string;
  sm_samples : int;
  sm_wall_s : float;
  sm_phases : phase_stat list;
  sm_criteria : (string * int) list;  (** run-total criterion mix *)
  sm_final_worst_margin_ps : float;
  sm_final_worst_constraint : int;
  sm_final_total_negative_ps : float;
  sm_final_violations : int;
  sm_final_peak_density : int;
  sm_final_deletions : int;
  sm_final_ep_slack_min_ps : float;
  sm_final_ep_slack_max_ps : float;
  sm_margins : float array;
      (** per-constraint margins from the last phase sample *)
}

val summarize : Qlog.record list -> summary
(** Fold the record stream into per-phase segments (each [Q_phase]
    record closes one) and final figures from the last record.  An
    empty stream yields an all-[nan]/zero summary. *)

val to_json : summary -> string
(** Render as the [quality.json] document (schema {!schema}).
    Non-finite floats render as [null]. *)

val of_json_string : ?file:string -> string -> (summary, Bgr_error.t) result
(** Parse a [quality.json] back; [null] numbers read as [nan].  A
    missing mandatory key or a wrong schema tag is a [Parse] error. *)

(** {1 A/B diff} *)

type verdict = Pass | Regressed | Improved | Skipped

val verdict_string : verdict -> string

type check = {
  ck_metric : string;
  ck_a : string;  (** baseline value, rendered *)
  ck_b : string;  (** candidate value, rendered *)
  ck_verdict : verdict;
  ck_note : string;
}

val diff :
  ?margin_tol_ps:float ->
  ?wall_factor:float ->
  ?wall_floor_s:float ->
  summary ->
  summary ->
  check list
(** [diff a b] compares candidate [b] against baseline [a]: worst and
    total negative margin (regressed when [b] drops below [a] by more
    than [margin_tol_ps], default 0.001 ps), violation count and peak
    density (any increase regresses), and wall-clock total plus
    per-phase (regressed when [b > a * wall_factor + wall_floor_s],
    defaults 1.5x + 1 s — generous because CI machines are noisy).
    Metrics absent from either run are [Skipped], never [Regressed]. *)

val regressed : check list -> bool
(** Whether any check came back [Regressed]. *)
