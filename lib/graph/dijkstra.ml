type result = { dist : float array; parent_edge : int array }

let shortest_paths ?(exclude_edge = -1) ?cost g ~source =
  let cost = match cost with Some f -> f | None -> fun (e : Ugraph.edge) -> e.Ugraph.weight in
  let n = Ugraph.n_vertices g in
  let dist = Array.make (max 1 n) infinity in
  let parent_edge = Array.make (max 1 n) (-1) in
  let settled = Bytes.make (max 1 n) '\000' in
  let heap = Heap.create () in
  dist.(source) <- 0.0;
  Heap.push heap 0.0 source;
  let relax v (e : Ugraph.edge) =
    if e.id <> exclude_edge && e.u <> e.v then begin
      let w = Ugraph.other_endpoint e v in
      let d = dist.(v) +. cost e in
      if d < dist.(w) then begin
        dist.(w) <- d;
        parent_edge.(w) <- e.id;
        Heap.push heap d w
      end
    end
  in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
      if Bytes.get settled v = '\000' && d <= dist.(v) then begin
        Bytes.set settled v '\001';
        Ugraph.iter_incident g v (relax v)
      end;
      drain ()
  in
  drain ();
  { dist; parent_edge }

let path_edges g r ~target =
  if r.dist.(target) = infinity then None
  else begin
    let rec walk v acc =
      match r.parent_edge.(v) with
      | -1 -> acc
      | eid ->
        let e = Ugraph.edge g eid in
        walk (Ugraph.other_endpoint e v) (eid :: acc)
    in
    Some (List.rev (walk target []))
  end

let tentative_tree ?exclude_edge ?cost g ~source ~targets =
  let r =
    match exclude_edge with
    | None -> shortest_paths ?cost g ~source
    | Some e -> shortest_paths ~exclude_edge:e ?cost g ~source
  in
  let exception Unreachable in
  let seen = Hashtbl.create 64 in
  let add_path target =
    match path_edges g r ~target with
    | None -> raise Unreachable
    | Some edges -> List.iter (fun eid -> Hashtbl.replace seen eid ()) edges
  in
  match List.iter add_path targets with
  | () ->
    let ids = Hashtbl.fold (fun eid () acc -> eid :: acc) seen [] in
    Some (List.sort Int.compare ids)
  | exception Unreachable -> None

let edges_length g edge_ids =
  List.fold_left (fun acc eid -> acc +. (Ugraph.edge g eid).weight) 0.0 edge_ids
