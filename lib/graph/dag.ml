type t = {
  mutable out_adj : (int * int) list array;  (* vertex -> (edge id, dst) *)
  mutable in_adj : (int * int) list array;  (* vertex -> (edge id, src) *)
  mutable weights : float array;
  mutable srcs : int array;
  mutable dsts : int array;
  mutable n_vertices : int;
  mutable n_edges : int;
  mutable topo : int array option;  (* cache, invalidated on structural change *)
}

exception Cycle of int

let create ?(vertex_hint = 16) () =
  let n = max 1 vertex_hint in
  { out_adj = Array.make n [];
    in_adj = Array.make n [];
    weights = Array.make 16 0.0;
    srcs = Array.make 16 0;
    dsts = Array.make 16 0;
    n_vertices = 0;
    n_edges = 0;
    topo = None }

let add_vertex t =
  let capacity = Array.length t.out_adj in
  if t.n_vertices = capacity then begin
    let out_adj = Array.make (2 * capacity) [] in
    Array.blit t.out_adj 0 out_adj 0 capacity;
    t.out_adj <- out_adj;
    let in_adj = Array.make (2 * capacity) [] in
    Array.blit t.in_adj 0 in_adj 0 capacity;
    t.in_adj <- in_adj
  end;
  let v = t.n_vertices in
  t.n_vertices <- v + 1;
  t.topo <- None;
  v

let n_vertices t = t.n_vertices
let n_edges t = t.n_edges

let check_vertex t v =
  if v < 0 || v >= t.n_vertices then invalid_arg "Dag: unknown vertex"

let check_edge t e =
  if e < 0 || e >= t.n_edges then invalid_arg "Dag: unknown edge id"

let add_edge t ~src ~dst ~weight =
  check_vertex t src;
  check_vertex t dst;
  let capacity = Array.length t.weights in
  if t.n_edges = capacity then begin
    let weights = Array.make (2 * capacity) 0.0 in
    Array.blit t.weights 0 weights 0 capacity;
    t.weights <- weights;
    let srcs = Array.make (2 * capacity) 0 in
    Array.blit t.srcs 0 srcs 0 capacity;
    t.srcs <- srcs;
    let dsts = Array.make (2 * capacity) 0 in
    Array.blit t.dsts 0 dsts 0 capacity;
    t.dsts <- dsts
  end;
  let id = t.n_edges in
  t.n_edges <- id + 1;
  t.weights.(id) <- weight;
  t.srcs.(id) <- src;
  t.dsts.(id) <- dst;
  t.out_adj.(src) <- (id, dst) :: t.out_adj.(src);
  t.in_adj.(dst) <- (id, src) :: t.in_adj.(dst);
  t.topo <- None;
  id

let set_weight t e w =
  check_edge t e;
  t.weights.(e) <- w

let weight t e =
  check_edge t e;
  t.weights.(e)

let endpoints t e =
  check_edge t e;
  (t.srcs.(e), t.dsts.(e))

let iter_out t v f =
  check_vertex t v;
  List.iter (fun (edge_id, dst) -> f ~edge_id ~dst ~weight:t.weights.(edge_id)) t.out_adj.(v)

let iter_in t v f =
  check_vertex t v;
  List.iter (fun (edge_id, src) -> f ~edge_id ~src ~weight:t.weights.(edge_id)) t.in_adj.(v)

let iter_edges t f =
  for edge_id = 0 to t.n_edges - 1 do
    f ~edge_id ~src:t.srcs.(edge_id) ~dst:t.dsts.(edge_id) ~weight:t.weights.(edge_id)
  done

(* Kahn's algorithm; a leftover vertex with nonzero in-degree witnesses
   a cycle. *)
let compute_topo t =
  let n = t.n_vertices in
  let in_degree = Array.make (max 1 n) 0 in
  for v = 0 to n - 1 do
    List.iter (fun (_, dst) -> in_degree.(dst) <- in_degree.(dst) + 1) t.out_adj.(v)
  done;
  let order = Array.make (max 1 n) 0 in
  let filled = ref 0 in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if in_degree.(v) = 0 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    order.(!filled) <- v;
    incr filled;
    let release (_, dst) =
      in_degree.(dst) <- in_degree.(dst) - 1;
      if in_degree.(dst) = 0 then Queue.add dst queue
    in
    List.iter release t.out_adj.(v)
  done;
  if !filled < n then begin
    let witness = ref (-1) in
    for v = 0 to n - 1 do
      if !witness = -1 && in_degree.(v) > 0 then witness := v
    done;
    raise (Cycle !witness)
  end;
  order

let topo_order t =
  match t.topo with
  | Some order -> order
  | None ->
    let order = compute_topo t in
    t.topo <- Some order;
    order

let longest_from t ~sources =
  let order = topo_order t in
  let dist = Array.make (max 1 t.n_vertices) neg_infinity in
  List.iter
    (fun (s, offset) ->
      check_vertex t s;
      if offset > dist.(s) then dist.(s) <- offset)
    sources;
  let relax v =
    if dist.(v) > neg_infinity then
      iter_out t v (fun ~edge_id:_ ~dst ~weight ->
          let d = dist.(v) +. weight in
          if d > dist.(dst) then dist.(dst) <- d)
  in
  Array.iter relax order;
  dist

let longest_to t ~sinks =
  let order = topo_order t in
  let dist = Array.make (max 1 t.n_vertices) neg_infinity in
  List.iter
    (fun (s, offset) ->
      check_vertex t s;
      if offset > dist.(s) then dist.(s) <- offset)
    sinks;
  let relax v =
    iter_out t v (fun ~edge_id:_ ~dst ~weight ->
        if dist.(dst) > neg_infinity then begin
          let d = dist.(dst) +. weight in
          if d > dist.(v) then dist.(v) <- d
        end)
  in
  for i = Array.length order - 1 downto 0 do
    relax order.(i)
  done;
  dist

let bfs_mark adjacency n roots =
  let mark = Array.make (max 1 n) false in
  let queue = Queue.create () in
  let seed v =
    if not mark.(v) then begin
      mark.(v) <- true;
      Queue.add v queue
    end
  in
  List.iter seed roots;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    List.iter (fun (_, w) -> seed w) adjacency.(v)
  done;
  mark

let reachable_from t roots =
  List.iter (check_vertex t) roots;
  bfs_mark t.out_adj t.n_vertices roots

let coreachable_to t roots =
  List.iter (check_vertex t) roots;
  bfs_mark t.in_adj t.n_vertices roots

let longest_path t ~sources ~sinks =
  let from_src = longest_from t ~sources in
  let is_sink = Array.make (max 1 t.n_vertices) false in
  List.iter
    (fun s ->
      check_vertex t s;
      is_sink.(s) <- true)
    sinks;
  let best = ref neg_infinity and best_v = ref (-1) in
  List.iter
    (fun s ->
      if from_src.(s) > !best then begin
        best := from_src.(s);
        best_v := s
      end)
    sinks;
  if !best_v = -1 || !best = neg_infinity then None
  else begin
    (* Walk backwards greedily along edges that realize the distances;
       stop when no predecessor explains the arrival (a source whose
       offset realizes it). *)
    let eps = 1e-9 in
    let rec walk v acc =
      let pred = ref (-1) in
      iter_in t v (fun ~edge_id:_ ~src ~weight ->
          if
            !pred = -1
            && from_src.(src) > neg_infinity
            && abs_float (from_src.(src) +. weight -. from_src.(v)) < eps
          then pred := src);
      if !pred = -1 then v :: acc else walk !pred (v :: acc)
    in
    Some (!best, walk !best_v [])
  end
