(** Mutable undirected multigraph with edge deletion.

    Vertices are dense integers [0..n_vertices-1]; edges carry a float
    weight and a stable integer id.  Deleting an edge marks it dead —
    ids of dead edges stay valid for queries via [is_live] but dead
    edges are skipped by all iteration.  This is the substrate for the
    per-net routing graphs [G_r(n)], whose whole life is a sequence of
    deletions (the edge-deletion routing scheme of Sec. 3). *)

type t

type edge = private {
  id : int;
  u : int;
  v : int;
  weight : float;
}

val create : ?vertex_hint:int -> ?edge_hint:int -> unit -> t

val add_vertex : t -> int
(** Allocate a fresh vertex; returns its id. *)

val n_vertices : t -> int

val n_edges_total : t -> int
(** Number of edge ids ever allocated (live + dead). *)

val n_edges_live : t -> int

val add_edge : t -> u:int -> v:int -> weight:float -> int
(** Add an undirected edge; returns its id.  Parallel edges and
    self-loops are permitted (self-loops are never useful in routing
    graphs but are not rejected here). *)

val delete_edge : t -> int -> unit
(** Mark the edge dead.  Deleting a dead edge is a no-op. *)

val is_live : t -> int -> bool

val edge : t -> int -> edge
(** Edge record by id (live or dead).  @raise Invalid_argument on an
    unknown id. *)

val other_endpoint : edge -> int -> int
(** The endpoint of the edge that is not the given vertex.
    @raise Invalid_argument if the vertex is not an endpoint. *)

val degree : t -> int -> int
(** Number of live incident edges (self-loops count twice). *)

val iter_edges : t -> (edge -> unit) -> unit
(** Iterate live edges in increasing id order. *)

val fold_edges : t -> ('a -> edge -> 'a) -> 'a -> 'a

val iter_incident : t -> int -> (edge -> unit) -> unit
(** Iterate live edges incident to a vertex. *)

val fold_incident : t -> int -> ('a -> edge -> 'a) -> 'a -> 'a

val live_edges : t -> edge list
(** Live edges in increasing id order. *)

val connected_within : t -> int list -> bool
(** [connected_within g vs] is true when all vertices of [vs] lie in one
    connected component of the live graph (vacuously true for [] and
    singletons). *)

val components : t -> int array
(** Component label per vertex over live edges (labels are
    representative vertex ids). *)
