type edge = { id : int; u : int; v : int; weight : float }

type t = {
  mutable edges : edge array;  (* indexed by edge id; slot may be unused past n_edges *)
  mutable alive : Bytes.t;  (* one flag byte per edge id *)
  mutable n_edges : int;
  mutable adjacency : int list array;  (* per vertex: incident edge ids, newest first *)
  mutable n_vertices : int;
  mutable n_live : int;
}

let dummy_edge = { id = -1; u = -1; v = -1; weight = 0.0 }

let create ?(vertex_hint = 16) ?(edge_hint = 32) () =
  { edges = Array.make (max 1 edge_hint) dummy_edge;
    alive = Bytes.make (max 1 edge_hint) '\000';
    n_edges = 0;
    adjacency = Array.make (max 1 vertex_hint) [];
    n_vertices = 0;
    n_live = 0 }

let add_vertex t =
  let capacity = Array.length t.adjacency in
  if t.n_vertices = capacity then begin
    let adjacency = Array.make (2 * capacity) [] in
    Array.blit t.adjacency 0 adjacency 0 capacity;
    t.adjacency <- adjacency
  end;
  let v = t.n_vertices in
  t.n_vertices <- v + 1;
  v

let n_vertices t = t.n_vertices
let n_edges_total t = t.n_edges
let n_edges_live t = t.n_live

let check_vertex t v =
  if v < 0 || v >= t.n_vertices then
    Bgr_error.raise_error Bgr_error.Internal "Ugraph: unknown vertex %d (have %d)" v t.n_vertices

let check_edge t e =
  if e < 0 || e >= t.n_edges then
    Bgr_error.raise_error Bgr_error.Internal "Ugraph: unknown edge id %d (have %d)" e t.n_edges

let add_edge t ~u ~v ~weight =
  check_vertex t u;
  check_vertex t v;
  let capacity = Array.length t.edges in
  if t.n_edges = capacity then begin
    let edges = Array.make (2 * capacity) dummy_edge in
    Array.blit t.edges 0 edges 0 capacity;
    t.edges <- edges;
    let alive = Bytes.make (2 * capacity) '\000' in
    Bytes.blit t.alive 0 alive 0 capacity;
    t.alive <- alive
  end;
  let id = t.n_edges in
  t.n_edges <- id + 1;
  t.edges.(id) <- { id; u; v; weight };
  Bytes.set t.alive id '\001';
  t.n_live <- t.n_live + 1;
  t.adjacency.(u) <- id :: t.adjacency.(u);
  if v <> u then t.adjacency.(v) <- id :: t.adjacency.(v);
  id

let is_live t e = e >= 0 && e < t.n_edges && Bytes.get t.alive e = '\001'

let delete_edge t e =
  check_edge t e;
  if Bytes.get t.alive e = '\001' then begin
    Bytes.set t.alive e '\000';
    t.n_live <- t.n_live - 1
  end

let edge t e =
  check_edge t e;
  t.edges.(e)

let other_endpoint e v =
  if e.u = v then e.v
  else if e.v = v then e.u
  else
    Bgr_error.raise_error Bgr_error.Internal
      "Ugraph.other_endpoint: vertex %d not on edge %d (%d-%d)" v e.id e.u e.v

let iter_incident t v f =
  check_vertex t v;
  List.iter (fun id -> if is_live t id then f t.edges.(id)) t.adjacency.(v)

let fold_incident t v f acc =
  check_vertex t v;
  List.fold_left (fun acc id -> if is_live t id then f acc t.edges.(id) else acc) acc t.adjacency.(v)

let degree t v =
  fold_incident t v (fun d e -> if e.u = e.v then d + 2 else d + 1) 0

let iter_edges t f =
  for id = 0 to t.n_edges - 1 do
    if Bytes.get t.alive id = '\001' then f t.edges.(id)
  done

let fold_edges t f acc =
  let acc = ref acc in
  iter_edges t (fun e -> acc := f !acc e);
  !acc

let live_edges t = List.rev (fold_edges t (fun acc e -> e :: acc) [])

let components t =
  let label = Array.make (max 1 t.n_vertices) (-1) in
  let stack = Stack.create () in
  for root = 0 to t.n_vertices - 1 do
    if label.(root) = -1 then begin
      label.(root) <- root;
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        let visit e =
          let w = other_endpoint e v in
          if label.(w) = -1 then begin
            label.(w) <- root;
            Stack.push w stack
          end
        in
        iter_incident t v visit
      done
    end
  done;
  label

let connected_within t vs =
  match vs with
  | [] | [ _ ] -> true
  | v0 :: rest ->
    let label = components t in
    let root = label.(v0) in
    List.for_all (fun v -> label.(v) = root) rest
