type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0.0; payloads = Array.make 16 0; size = 0 }
let is_empty t = t.size = 0
let size t = t.size

let grow t =
  let capacity = Array.length t.keys in
  if t.size = capacity then begin
    let keys = Array.make (2 * capacity) 0.0 in
    let payloads = Array.make (2 * capacity) 0 in
    Array.blit t.keys 0 keys 0 capacity;
    Array.blit t.payloads 0 payloads 0 capacity;
    t.keys <- keys;
    t.payloads <- payloads
  end

let swap t i j =
  let k = t.keys.(i) and p = t.payloads.(i) in
  t.keys.(i) <- t.keys.(j);
  t.payloads.(i) <- t.payloads.(j);
  t.keys.(j) <- k;
  t.payloads.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.keys.(left) < t.keys.(!smallest) then smallest := left;
  if right < t.size && t.keys.(right) < t.keys.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key payload =
  grow t;
  t.keys.(t.size) <- key;
  t.payloads.(t.size) <- payload;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and payload = t.payloads.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.payloads.(0) <- t.payloads.(t.size);
      sift_down t 0
    end;
    Some (key, payload)
  end
