(** Minimal binary min-heap of [(float key, int payload)] pairs.

    Supports the lazy-deletion discipline used by [Dijkstra]: stale
    entries are pushed freely and filtered by the caller on pop. *)

type t

val create : unit -> t

val is_empty : t -> bool

val push : t -> float -> int -> unit

val pop : t -> (float * int) option
(** Remove and return the minimum-key entry. *)

val size : t -> int
