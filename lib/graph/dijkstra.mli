(** Single-source shortest paths over the live edges of a [Ugraph],
    and shortest-path-union ("tentative") trees.

    The router estimates every net's wire length with "the shortest
    paths from the driving terminal vertex to all other terminals ...
    The union of all paths is the tentative tree" (Sec. 3.2).  The
    optional [exclude_edge] implements the what-if evaluation of
    [LM(e,P)]: a tentative tree "assuming the deletion of e". *)

type result = {
  dist : float array;  (** [infinity] when unreachable *)
  parent_edge : int array;  (** entering edge id on a shortest path; -1 at source / unreachable *)
}

val shortest_paths :
  ?exclude_edge:int -> ?cost:(Ugraph.edge -> float) -> Ugraph.t -> source:int -> result
(** [cost] (default: the edge weight) lets callers price congestion
    into the search — used by the sequential baseline router. *)

val path_edges : Ugraph.t -> result -> target:int -> int list option
(** Edge ids of the shortest path from source to [target], target side
    first; [None] when unreachable. *)

val tentative_tree :
  ?exclude_edge:int ->
  ?cost:(Ugraph.edge -> float) ->
  Ugraph.t ->
  source:int ->
  targets:int list ->
  int list option
(** Union of the shortest-path edge sets from [source] to every target,
    deduplicated, in increasing id order.  [None] if any target is
    unreachable. *)

val edges_length : Ugraph.t -> int list -> float
(** Total weight of the given edge ids. *)
