type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    (* Path halving: point x at its grandparent and continue from there. *)
    let g = t.parent.(p) in
    t.parent.(x) <- g;
    find t g
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ka = t.rank.(ra) and kb = t.rank.(rb) in
    if ka < kb then t.parent.(ra) <- rb
    else if kb < ka then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- ka + 1
    end;
    true
  end

let same t a b = find t a = find t b

let count_distinct t xs =
  let reps = List.sort_uniq Int.compare (List.map (find t) xs) in
  List.length reps
