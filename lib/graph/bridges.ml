(* Iterative Tarjan low-link bridge finding.  Frames carry the vertex,
   the edge used to enter it, and the not-yet-scanned incident edges. *)

type frame = {
  vertex : int;
  parent_edge : int;  (* -1 at component roots *)
  mutable remaining : Ugraph.edge list;
}

let bridges g =
  let n = Ugraph.n_vertices g in
  let total = Ugraph.n_edges_total g in
  let is_bridge = Array.make total false in
  let adjacency = Array.make (max 1 n) [] in
  let record (e : Ugraph.edge) =
    if e.u <> e.v then begin
      adjacency.(e.u) <- e :: adjacency.(e.u);
      adjacency.(e.v) <- e :: adjacency.(e.v)
    end
  in
  Ugraph.iter_edges g record;
  let disc = Array.make (max 1 n) (-1) in
  let low = Array.make (max 1 n) 0 in
  let time = ref 0 in
  let stack = Stack.create () in
  let enter vertex parent_edge =
    disc.(vertex) <- !time;
    low.(vertex) <- !time;
    incr time;
    Stack.push { vertex; parent_edge; remaining = adjacency.(vertex) } stack
  in
  let close frame =
    ignore (Stack.pop stack);
    if frame.parent_edge >= 0 then begin
      let e = Ugraph.edge g frame.parent_edge in
      let parent = Ugraph.other_endpoint e frame.vertex in
      if low.(frame.vertex) < low.(parent) then low.(parent) <- low.(frame.vertex);
      if low.(frame.vertex) > disc.(parent) then is_bridge.(frame.parent_edge) <- true
    end
  in
  for root = 0 to n - 1 do
    if disc.(root) = -1 then begin
      enter root (-1);
      while not (Stack.is_empty stack) do
        let frame = Stack.top stack in
        match frame.remaining with
        | [] -> close frame
        | e :: rest ->
          frame.remaining <- rest;
          if e.id <> frame.parent_edge then begin
            let w = Ugraph.other_endpoint e frame.vertex in
            if disc.(w) = -1 then enter w e.id
            else if disc.(w) < low.(frame.vertex) then low.(frame.vertex) <- disc.(w)
          end
      done
    end
  done;
  is_bridge

let non_bridge_ids g =
  let flags = bridges g in
  List.rev
    (Ugraph.fold_edges g
       (fun acc (e : Ugraph.edge) -> if flags.(e.id) then acc else e.id :: acc)
       [])
