(** Directed acyclic graphs with mutable edge weights and longest-path
    analysis — the substrate for the global delay graph [G_D] and the
    per-constraint graphs [G_d(P)] of Sec. 2.

    Edge weights change every time a net's estimated wiring capacitance
    changes, so weights are mutable while the topology (and its cached
    topological order) is append-only. *)

type t

exception Cycle of int
(** Raised by traversals when the graph has a directed cycle; carries a
    vertex on the cycle.  The delay graphs the router builds are acyclic
    by construction (flip-flops cut cycles), so this signals a modelling
    error in the caller. *)

val create : ?vertex_hint:int -> unit -> t

val add_vertex : t -> int

val n_vertices : t -> int

val n_edges : t -> int

val add_edge : t -> src:int -> dst:int -> weight:float -> int
(** Returns the new edge id. *)

val set_weight : t -> int -> float -> unit

val weight : t -> int -> float

val endpoints : t -> int -> int * int
(** [(src, dst)] of an edge id. *)

val iter_out : t -> int -> (edge_id:int -> dst:int -> weight:float -> unit) -> unit

val iter_in : t -> int -> (edge_id:int -> src:int -> weight:float -> unit) -> unit

val iter_edges : t -> (edge_id:int -> src:int -> dst:int -> weight:float -> unit) -> unit

val topo_order : t -> int array
(** Topological order of all vertices (cached until the next
    [add_edge]/[add_vertex]).  @raise Cycle *)

val longest_from : t -> sources:(int * float) list -> float array
(** Per-vertex longest path length starting at any source, where each
    source carries an initial arrival offset ([neg_infinity] when
    unreachable from every source). *)

val longest_to : t -> sinks:(int * float) list -> float array
(** Per-vertex longest path length ending at any sink, each sink
    carrying a final offset ([neg_infinity] when no sink is
    reachable). *)

val reachable_from : t -> int list -> bool array

val coreachable_to : t -> int list -> bool array

val longest_path :
  t -> sources:(int * float) list -> sinks:int list -> (float * int list) option
(** The maximum source-to-sink path (including source offsets): its
    length and its vertex sequence.  [None] when no sink is reachable
    from any source. *)
