(** Disjoint-set union (union by rank, path halving).

    Used for terminal-connectivity checks in the router and for merging
    net segments in the channel router. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0..n-1]. *)

val find : t -> int -> int
(** Representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merge two sets; [true] when they were distinct. *)

val same : t -> int -> int -> bool

val count_distinct : t -> int list -> int
(** Number of distinct sets represented among the given elements. *)
