(** Bridge detection on the live part of a multigraph.

    An edge is a bridge when its deletion disconnects its component.
    Parallel edges are handled correctly (two parallel edges make each
    other non-bridges) because the DFS skips only the single traversal
    of the parent *edge id*, not every edge to the parent vertex.

    The router recomputes this per net after each deletion in that
    net — routing graphs are small, so the O(V+E) cost is acceptable
    (DESIGN.md Sec. 5, "Incrementality"). *)

val bridges : Ugraph.t -> bool array
(** [bridges g] is a flag per edge id ([Ugraph.n_edges_total g] long):
    [true] iff the edge is live and a bridge.  Dead edges and self-loops
    are [false]. *)

val non_bridge_ids : Ugraph.t -> int list
(** Live non-bridge edge ids in increasing order. *)
