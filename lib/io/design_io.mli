(** One-file design bundles: netlist + placement + constraints in
    sections, so a whole routing job can be exchanged as a single text
    file.

    {v
    [library]        (optional: embedded cell masters)
    ... Cell_lib_io format ...
    [netlist]
    ... Netlist_io format ...
    [placement]
    ... Layout_io format ...
    [constraints]
    ... Constraint_io format ...
    v}

    The [library], [placement] and [constraints] sections are
    optional; an embedded library takes precedence over the caller's
    [libraries] when the netlist references its name. *)

type t = {
  d_netlist : Netlist.t;
  d_floorplan : Floorplan.t option;
  d_constraints : Path_constraint.t list;
}

val to_string :
  ?embed_library:bool ->
  ?floorplan:Floorplan.t ->
  ?constraints:Path_constraint.t list ->
  Netlist.t ->
  string
(** [embed_library] (default false) adds a [\[library\]] section with
    the netlist's cell masters, making the bundle self-contained —
    readable without knowing the library by name. *)

val write :
  ?embed_library:bool ->
  ?floorplan:Floorplan.t ->
  ?constraints:Path_constraint.t list ->
  Netlist.t ->
  path:string ->
  unit

val of_string : ?libraries:Cell_lib.t list -> ?dims:Dims.t -> string -> t
(** [libraries] defaults to [[Cell_lib.ecl_default]], [dims] to
    [Dims.default].  Unknown or repeated [\[section\]] headers are
    rejected with the header's 1-based line number; errors inside a
    section are reported at their whole-file line.
    @raise Lineio.Parse_error *)

val read : ?libraries:Cell_lib.t list -> ?dims:Dims.t -> string -> t
(** Read a bundle from a file path. *)

val of_string_result :
  ?libraries:Cell_lib.t list -> ?dims:Dims.t -> ?file:string -> string -> (t, Bgr_error.t) result
(** Exception-free variant of {!of_string}; see {!Lineio.protect} for
    the error mapping.  [file] stamps the error's file field. *)

val read_result : ?libraries:Cell_lib.t list -> ?dims:Dims.t -> string -> (t, Bgr_error.t) result
(** Exception-free variant of {!read}; the path is stamped on errors. *)

val to_flow_input : t -> Flow.input
(** Convenience: a {!Flow.input} from a bundle with a placement.
    @raise Invalid_argument when the bundle has no placement. *)
