(** Line/token plumbing shared by the design-file readers.

    The bgr text formats are line oriented: `#` starts a comment, blank
    lines are skipped, fields are whitespace separated.  Errors carry
    the 1-based line number. *)

exception Parse_error of { line : int; message : string }

val fail : line:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** @raise Parse_error *)

val tokenize : string -> (int * string list) list
(** Split text into (line number, tokens) for every non-empty,
    non-comment line. *)

val int_field : line:int -> what:string -> string -> int

val float_field : line:int -> what:string -> string -> float
