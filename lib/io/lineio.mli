(** Line/token plumbing shared by the design-file readers.

    The bgr text formats are line oriented: `#` starts a comment, blank
    lines are skipped, fields are whitespace separated.  Errors carry
    the 1-based line number.

    {!protect} is the single boundary between the exception-raising
    parser internals and the [result]-returning public API: it maps the
    whole parser/validator exception zoo onto {!Bgr_error.t}.  Errors
    that concern the file as a whole (semantic checks that have no
    single offending line) are reported with line 0. *)

exception Parse_error of { line : int; message : string }

val fail : line:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** @raise Parse_error *)

val tokenize : string -> (int * string list) list
(** Split text into (line number, tokens) for every non-empty,
    non-comment line.  Fault-injection site ["io.parse"]. *)

val int_field : line:int -> what:string -> string -> int

val float_field : line:int -> what:string -> string -> float
(** Rejects NaN and infinities: every number in a design file must be
    finite. *)

val read_all : string -> string
(** Whole file as a string.  @raise Sys_error *)

val protect : ?file:string -> (unit -> 'a) -> ('a, Bgr_error.t) result
(** [protect ?file f] runs [f] and converts any raised parse or
    validation exception into [Error e], stamping [file] on the error
    when given.  [Parse_error] becomes code [Parse] with its line;
    [Netlist.Invalid], [Cell.Malformed] and
    [Path_constraint.Bad_constraint] become [Validate] at line 0;
    [Floorplan.Overlap] keeps its [Geometry] payload;
    [Routing_graph.Unroutable] becomes [Unroutable]; [Sys_error]
    becomes [Io_error]; an already-structured [Bgr_error.Error] passes
    through; anything else (except [Out_of_memory] and
    [Stack_overflow]) is wrapped as [Internal] so that readers never
    leak an exception. *)
