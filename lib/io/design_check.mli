(** Whole-design semantic validation, beyond what the parsers and the
    netlist builder enforce line by line.

    {!validate} catches the problems that only show up when the bundle
    is looked at as a whole: duplicate net names (the builder keeps the
    last one silently), non-finite or non-positive electrical
    parameters on cell masters, degenerate constraint limits, and —
    when a placement is present — net endpoints that resolve outside
    the chip or to unplaced instances, which would make the net
    unroutable.

    Errors carry code [Validate] (or [Geometry] for placement-related
    findings) and line 0: they concern the design, not a single source
    line. *)

val validate : Design_io.t -> (Design_io.t, Bgr_error.t) result
(** Returns the design unchanged on success, so it chains after
    {!Design_io.read_result} with [Result.bind]. *)
