let to_string fp =
  let netlist = Floorplan.netlist fp in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# bgr placement v1";
  line "rows %d" (Floorplan.n_rows fp);
  line "width %d" (Floorplan.width fp);
  List.iter
    (fun (c, lo, hi) -> line "block %d %d %d" c lo hi)
    (Floorplan.blockage_triples fp);
  for r = 0 to Floorplan.n_rows fp - 1 do
    Array.iter
      (fun (p : Floorplan.placed) ->
        line "cell %s %d %d" (Netlist.instance netlist p.Floorplan.inst).Netlist.inst_name r
          p.Floorplan.x)
      (Floorplan.row_cells fp r);
    Array.iter
      (fun (s : Floorplan.slot) -> line "feed %d %d %d" r s.Floorplan.slot_x s.Floorplan.width_flag)
      (Floorplan.row_slots fp r)
  done;
  Buffer.contents buf

let write fp ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string fp))

let of_string ~netlist ~dims text =
  let insts = Hashtbl.create 256 in
  Array.iter
    (fun (i : Netlist.instance) -> Hashtbl.replace insts i.Netlist.inst_name i.Netlist.inst_id)
    (Netlist.instances netlist);
  let rows = ref None and width = ref None in
  let cells = ref [] and slots = ref [] and blockages = ref [] in
  let on_line (line, tokens) =
    match tokens with
    | [ "rows"; n ] -> rows := Some (Lineio.int_field ~line ~what:"rows" n)
    | [ "width"; n ] -> width := Some (Lineio.int_field ~line ~what:"width" n)
    | [ "cell"; name; r; x ] ->
      (match Hashtbl.find_opt insts name with
      | None -> Lineio.fail ~line "unknown instance %s" name
      | Some inst ->
        cells :=
          { Floorplan.inst;
            row = Lineio.int_field ~line ~what:"row" r;
            x = Lineio.int_field ~line ~what:"x" x }
          :: !cells)
    | [ "block"; c; lo; hi ] ->
      blockages :=
        ( Lineio.int_field ~line ~what:"channel" c,
          Lineio.int_field ~line ~what:"x_lo" lo,
          Lineio.int_field ~line ~what:"x_hi" hi )
        :: !blockages
    | [ "feed"; r; x; flag ] ->
      slots :=
        ( Lineio.int_field ~line ~what:"row" r,
          Lineio.int_field ~line ~what:"x" x,
          Lineio.int_field ~line ~what:"flag" flag )
        :: !slots
    | t :: _ -> Lineio.fail ~line "unknown directive %S" t
    | [] -> ()
  in
  List.iter on_line (Lineio.tokenize text);
  match (!rows, !width) with
  | Some n_rows, Some width ->
    Floorplan.make ~netlist ~dims ~n_rows ~width ~cells:(List.rev !cells) ~slots:(List.rev !slots)
      ~blockages:(List.rev !blockages) ()
  | None, _ -> Lineio.fail ~line:1 "missing rows line"
  | _, None -> Lineio.fail ~line:1 "missing width line"

let read ~netlist ~dims ~path = of_string ~netlist ~dims (Lineio.read_all path)

let of_string_result ?file ~netlist ~dims text =
  Lineio.protect ?file (fun () -> of_string ~netlist ~dims text)

let read_result ~netlist ~dims ~path =
  Lineio.protect ~file:path (fun () -> of_string ~netlist ~dims (Lineio.read_all path))
