type t = {
  d_netlist : Netlist.t;
  d_floorplan : Floorplan.t option;
  d_constraints : Path_constraint.t list;
}

let to_string ?(embed_library = false) ?floorplan ?(constraints = []) netlist =
  let buf = Buffer.create 8192 in
  if embed_library then begin
    Buffer.add_string buf "[library]\n";
    Buffer.add_string buf (Cell_lib_io.to_string (Netlist.library netlist))
  end;
  Buffer.add_string buf "[netlist]\n";
  Buffer.add_string buf (Netlist_io.to_string netlist);
  (match floorplan with
  | Some fp ->
    Buffer.add_string buf "[placement]\n";
    Buffer.add_string buf (Layout_io.to_string fp)
  | None -> ());
  if constraints <> [] then begin
    Buffer.add_string buf "[constraints]\n";
    Buffer.add_string buf (Constraint_io.to_string netlist constraints)
  end;
  Buffer.contents buf

let write ?embed_library ?floorplan ?constraints netlist ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?embed_library ?floorplan ?constraints netlist))

let split_sections text =
  let sections = Hashtbl.create 4 in
  let current = ref None in
  let buf = Buffer.create 1024 in
  let flush_section () =
    match !current with
    | None -> ()
    | Some name ->
      Hashtbl.replace sections name (Buffer.contents buf);
      Buffer.clear buf
  in
  List.iteri
    (fun i raw ->
      let trimmed = String.trim raw in
      if String.length trimmed >= 2 && trimmed.[0] = '[' && trimmed.[String.length trimmed - 1] = ']'
      then begin
        flush_section ();
        current := Some (String.sub trimmed 1 (String.length trimmed - 2))
      end
      else begin
        match !current with
        | Some _ -> Buffer.add_string buf (raw ^ "\n")
        | None ->
          if trimmed <> "" && trimmed.[0] <> '#' then
            Lineio.fail ~line:(i + 1) "content before the first [section] header"
      end)
    (String.split_on_char '\n' text);
  flush_section ();
  sections

let of_string ?(libraries = [ Cell_lib.ecl_default ]) ?(dims = Dims.default) text =
  let sections = split_sections text in
  let libraries =
    match Hashtbl.find_opt sections "library" with
    | Some s -> Cell_lib_io.of_string s :: libraries
    | None -> libraries
  in
  let netlist_text =
    match Hashtbl.find_opt sections "netlist" with
    | Some s -> s
    | None -> Lineio.fail ~line:1 "bundle has no [netlist] section"
  in
  let d_netlist = Netlist_io.of_string ~libraries netlist_text in
  let d_floorplan =
    Option.map (Layout_io.of_string ~netlist:d_netlist ~dims) (Hashtbl.find_opt sections "placement")
  in
  let d_constraints =
    match Hashtbl.find_opt sections "constraints" with
    | Some s -> Constraint_io.of_string ~netlist:d_netlist s
    | None -> []
  in
  { d_netlist; d_floorplan; d_constraints }

let read ?libraries ?dims path =
  let ic = open_in path in
  let text =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  of_string ?libraries ?dims text

let to_flow_input t =
  match t.d_floorplan with
  | None -> invalid_arg "Design_io.to_flow_input: bundle has no placement"
  | Some fp ->
    let cells = ref [] and slots = ref [] in
    for r = 0 to Floorplan.n_rows fp - 1 do
      Array.iter (fun p -> cells := p :: !cells) (Floorplan.row_cells fp r);
      Array.iter
        (fun (s : Floorplan.slot) -> slots := (r, s.Floorplan.slot_x, s.Floorplan.width_flag) :: !slots)
        (Floorplan.row_slots fp r)
    done;
    { Flow.netlist = t.d_netlist;
      dims = Floorplan.dims fp;
      n_rows = Floorplan.n_rows fp;
      width = Floorplan.width fp;
      cells = List.rev !cells;
      slots = List.rev !slots;
      blockages = Floorplan.blockage_triples fp;
      constraints = t.d_constraints }
