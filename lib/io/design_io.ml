type t = {
  d_netlist : Netlist.t;
  d_floorplan : Floorplan.t option;
  d_constraints : Path_constraint.t list;
}

let to_string ?(embed_library = false) ?floorplan ?(constraints = []) netlist =
  let buf = Buffer.create 8192 in
  if embed_library then begin
    Buffer.add_string buf "[library]\n";
    Buffer.add_string buf (Cell_lib_io.to_string (Netlist.library netlist))
  end;
  Buffer.add_string buf "[netlist]\n";
  Buffer.add_string buf (Netlist_io.to_string netlist);
  (match floorplan with
  | Some fp ->
    Buffer.add_string buf "[placement]\n";
    Buffer.add_string buf (Layout_io.to_string fp)
  | None -> ());
  if constraints <> [] then begin
    Buffer.add_string buf "[constraints]\n";
    Buffer.add_string buf (Constraint_io.to_string netlist constraints)
  end;
  Buffer.contents buf

let write ?embed_library ?floorplan ?constraints netlist ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?embed_library ?floorplan ?constraints netlist))

let known_sections = [ "library"; "netlist"; "placement"; "constraints" ]

let split_sections text =
  let sections = Hashtbl.create 4 in
  let seen_at = Hashtbl.create 4 in  (* section name -> header line *)
  let current = ref None in
  let buf = Buffer.create 1024 in
  let flush_section () =
    match !current with
    | None -> ()
    | Some (name, header_line) ->
      Hashtbl.replace sections name (header_line, Buffer.contents buf);
      Buffer.clear buf
  in
  List.iteri
    (fun i raw ->
      let trimmed = String.trim raw in
      if String.length trimmed >= 2 && trimmed.[0] = '[' && trimmed.[String.length trimmed - 1] = ']'
      then begin
        flush_section ();
        let name = String.sub trimmed 1 (String.length trimmed - 2) in
        let line = i + 1 in
        if not (List.mem name known_sections) then
          Lineio.fail ~line "unknown section [%s] (known: %s)" name
            (String.concat ", " known_sections);
        (match Hashtbl.find_opt seen_at name with
        | Some first -> Lineio.fail ~line "duplicate section [%s] (first at line %d)" name first
        | None -> Hashtbl.add seen_at name line);
        current := Some (name, line)
      end
      else begin
        match !current with
        | Some _ -> Buffer.add_string buf (raw ^ "\n")
        | None ->
          if trimmed <> "" && trimmed.[0] <> '#' then
            Lineio.fail ~line:(i + 1) "content before the first [section] header"
      end)
    (String.split_on_char '\n' text);
  flush_section ();
  sections

(* Section parsers see text starting just after the header, so their
   line numbers are section relative; shift them to whole-file lines. *)
let in_section (header_line, text) parse =
  try parse text
  with Lineio.Parse_error { line; message } ->
    raise (Lineio.Parse_error { line = (if line = 0 then 0 else header_line + line); message })

let of_string ?(libraries = [ Cell_lib.ecl_default ]) ?(dims = Dims.default) text =
  let sections = split_sections text in
  let libraries =
    match Hashtbl.find_opt sections "library" with
    | Some s -> in_section s Cell_lib_io.of_string :: libraries
    | None -> libraries
  in
  let netlist_section =
    match Hashtbl.find_opt sections "netlist" with
    | Some s -> s
    | None -> Lineio.fail ~line:0 "bundle has no [netlist] section"
  in
  let d_netlist = in_section netlist_section (Netlist_io.of_string ~libraries) in
  let d_floorplan =
    Option.map
      (fun s -> in_section s (Layout_io.of_string ~netlist:d_netlist ~dims))
      (Hashtbl.find_opt sections "placement")
  in
  let d_constraints =
    match Hashtbl.find_opt sections "constraints" with
    | Some s -> in_section s (Constraint_io.of_string ~netlist:d_netlist)
    | None -> []
  in
  { d_netlist; d_floorplan; d_constraints }

let read ?libraries ?dims path = of_string ?libraries ?dims (Lineio.read_all path)

let of_string_result ?libraries ?dims ?file text =
  Lineio.protect ?file (fun () -> of_string ?libraries ?dims text)

let read_result ?libraries ?dims path =
  Lineio.protect ~file:path (fun () -> of_string ?libraries ?dims (Lineio.read_all path))

let to_flow_input t =
  match t.d_floorplan with
  | None -> invalid_arg "Design_io.to_flow_input: bundle has no placement"
  | Some fp ->
    let cells = ref [] and slots = ref [] in
    for r = 0 to Floorplan.n_rows fp - 1 do
      Array.iter (fun p -> cells := p :: !cells) (Floorplan.row_cells fp r);
      Array.iter
        (fun (s : Floorplan.slot) -> slots := (r, s.Floorplan.slot_x, s.Floorplan.width_flag) :: !slots)
        (Floorplan.row_slots fp r)
    done;
    { Flow.netlist = t.d_netlist;
      dims = Floorplan.dims fp;
      n_rows = Floorplan.n_rows fp;
      width = Floorplan.width fp;
      cells = List.rev !cells;
      slots = List.rev !slots;
      blockages = Floorplan.blockage_triples fp;
      constraints = t.d_constraints }
