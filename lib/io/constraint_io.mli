(** Text serialization of critical path constraint sets (Sec. 2.2).

    Format (`# bgr constraints v1`):
    {v
    constraint P0 limit 2350.0
    source ff0.Q
    source port:IN0
    sink ff3.D
    sink port:OUT2
    v}

    [source]/[sink] lines attach to the most recent [constraint].
    Terminal references are resolved against the netlist: [inst.term]
    must name an output (source) or a sequential input (sink);
    [port:NAME] resolves to the port's role on its net. *)

val to_string : Netlist.t -> Path_constraint.t list -> string

val write : Netlist.t -> Path_constraint.t list -> path:string -> unit

val of_string : netlist:Netlist.t -> string -> Path_constraint.t list
(** @raise Lineio.Parse_error on malformed text or unresolvable
    terminals. *)

val read : netlist:Netlist.t -> path:string -> Path_constraint.t list

val of_string_result :
  ?file:string -> netlist:Netlist.t -> string -> (Path_constraint.t list, Bgr_error.t) result
(** Exception-free variant of {!of_string}; see {!Lineio.protect}. *)

val read_result :
  netlist:Netlist.t -> path:string -> (Path_constraint.t list, Bgr_error.t) result
