exception Parse_error of { line : int; message : string }

let fail ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s = match String.index_opt s '#' with None -> s | Some i -> String.sub s 0 i

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let tokenize text =
  Fault.check ~phase:"parse" "io.parse";
  String.split_on_char '\n' text
  |> List.mapi (fun i raw ->
         let body = strip_comment (strip_cr raw) in
         let tokens =
           String.split_on_char ' ' body
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> "")
         in
         (i + 1, tokens))
  |> List.filter (fun (_, tokens) -> tokens <> [])

let int_field ~line ~what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail ~line "expected an integer for %s, got %S" what s

let float_field ~line ~what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> v
  | Some _ -> fail ~line "expected a finite number for %s, got %S" what s
  | None -> fail ~line "expected a number for %s, got %S" what s

let read_all path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let protect ?file f =
  let err e = Error (match file with None -> e | Some f -> Bgr_error.with_file f e) in
  match f () with
  | v -> Ok v
  | exception Parse_error { line; message } ->
    err (Bgr_error.make ~line Bgr_error.Parse "%s" message)
  | exception Netlist.Invalid m -> err (Bgr_error.make ~line:0 Bgr_error.Validate "%s" m)
  | exception Cell.Malformed m -> err (Bgr_error.make ~line:0 Bgr_error.Validate "%s" m)
  | exception Floorplan.Overlap e -> err (if e.Bgr_error.line = None then Bgr_error.{ e with line = Some 0 } else e)
  | exception Path_constraint.Bad_constraint m ->
    err (Bgr_error.make ~line:0 Bgr_error.Validate "%s" m)
  | exception Routing_graph.Unroutable m ->
    err (Bgr_error.make ~line:0 Bgr_error.Unroutable "%s" m)
  | exception Sys_error m -> err (Bgr_error.make Bgr_error.Io_error "%s" m)
  | exception Bgr_error.Error e -> err e
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e ->
    err (Bgr_error.make ~line:0 Bgr_error.Internal "uncaught: %s" (Printexc.to_string e))
