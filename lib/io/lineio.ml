exception Parse_error of { line : int; message : string }

let fail ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s = match String.index_opt s '#' with None -> s | Some i -> String.sub s 0 i

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun i raw ->
         let body = strip_comment (strip_cr raw) in
         let tokens =
           String.split_on_char ' ' body
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> "")
         in
         (i + 1, tokens))
  |> List.filter (fun (_, tokens) -> tokens <> [])

let int_field ~line ~what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail ~line "expected an integer for %s, got %S" what s

let float_field ~line ~what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail ~line "expected a number for %s, got %S" what s
