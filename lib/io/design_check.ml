exception Found of Bgr_error.t

let fail ?(code = Bgr_error.Validate) fmt =
  Format.kasprintf (fun s -> raise (Found (Bgr_error.make ~line:0 code "%s" s))) fmt

let check_number ~cell ~term ~what v =
  if not (Float.is_finite v) then fail "cell %s terminal %s: %s is not finite" cell term what;
  if v < 0.0 then fail "cell %s terminal %s: %s is negative (%g)" cell term what v

let check_cell (c : Cell.t) =
  Array.iter
    (fun (t : Cell.terminal) ->
      match t.Cell.dir with
      | Cell.Input ->
        check_number ~cell:c.Cell.name ~term:t.Cell.t_name ~what:"fanin capacitance"
          t.Cell.fanin_ff;
        if t.Cell.fanin_ff = 0.0 then
          fail "cell %s terminal %s: fanin capacitance must be positive" c.Cell.name t.Cell.t_name
      | Cell.Output ->
        check_number ~cell:c.Cell.name ~term:t.Cell.t_name ~what:"tf slope" t.Cell.tf_ps_per_ff;
        check_number ~cell:c.Cell.name ~term:t.Cell.t_name ~what:"td slope" t.Cell.td_ps_per_ff)
    c.Cell.terminals;
  List.iter
    (fun (a : Cell.arc) ->
      if not (Float.is_finite a.Cell.intrinsic_ps) then
        fail "cell %s arc %s->%s: intrinsic delay is not finite" c.Cell.name a.Cell.from_input
          a.Cell.to_output)
    c.Cell.arcs

let check_nets netlist =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (n : Netlist.net) ->
      (match Hashtbl.find_opt seen n.Netlist.net_name with
      | Some _ -> fail "duplicate net name %s" n.Netlist.net_name
      | None -> Hashtbl.add seen n.Netlist.net_name ());
      if n.Netlist.pitch < 1 then
        fail "net %s: pitch must be >= 1, got %d" n.Netlist.net_name n.Netlist.pitch)
    (Netlist.nets netlist)

let check_constraints (constraints : Path_constraint.t list) =
  List.iter
    (fun (pc : Path_constraint.t) ->
      let l = pc.Path_constraint.limit_ps in
      if not (Float.is_finite l) then
        fail "constraint %s: limit is not finite" pc.Path_constraint.cname;
      if l <= 0.0 then fail "constraint %s: limit must be positive, got %g" pc.Path_constraint.cname l;
      if pc.Path_constraint.sources = [] then
        fail "constraint %s: no sources" pc.Path_constraint.cname;
      if pc.Path_constraint.sinks = [] then fail "constraint %s: no sinks" pc.Path_constraint.cname)
    constraints

let check_placement netlist fp =
  let width = Floorplan.width fp and n_channels = Floorplan.n_channels fp in
  let check_endpoint net_name ep =
    let describe () = Netlist_io.endpoint_name netlist ep in
    (match Floorplan.endpoint_column fp ep with
    | x ->
      if x < 0 || x >= width then
        fail ~code:Bgr_error.Geometry
          "net %s: endpoint %s resolves to column %d, outside the chip (width %d)" net_name
          (describe ()) x width
    | exception Not_found ->
      fail ~code:Bgr_error.Geometry "net %s: endpoint %s refers to an unplaced instance" net_name
        (describe ()));
    List.iter
      (fun c ->
        if c < 0 || c >= n_channels then
          fail ~code:Bgr_error.Geometry
            "net %s: endpoint %s reaches channel %d, outside 0..%d (net is unroutable)" net_name
            (describe ()) c (n_channels - 1))
      (Floorplan.endpoint_channels fp ep)
  in
  Array.iter
    (fun (n : Netlist.net) ->
      List.iter (check_endpoint n.Netlist.net_name) (n.Netlist.driver :: n.Netlist.sinks))
    (Netlist.nets netlist)

let validate (d : Design_io.t) =
  match
    let netlist = d.Design_io.d_netlist in
    List.iter check_cell (Cell_lib.cells (Netlist.library netlist));
    check_nets netlist;
    check_constraints d.Design_io.d_constraints;
    Option.iter (check_placement netlist) d.Design_io.d_floorplan
  with
  | () -> Ok d
  | exception Found e -> Error e
