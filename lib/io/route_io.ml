type desc =
  | Trunk of { channel : int; x_lo : int; x_hi : int }
  | Branch of { row : int; x : int }
  | Pin of { channel : int; x : int }

let descs_of_net router net =
  let rg = Router.routing_graph router net in
  Router.tree_edges router net
  |> List.map (fun eid ->
         match Routing_graph.edge_kind rg eid with
         | Routing_graph.Trunk { channel; span } ->
           Trunk { channel; x_lo = Interval.lo span; x_hi = Interval.hi span - 1 }
         | Routing_graph.Branch { row; x } -> Branch { row; x }
         | Routing_graph.Correspondence p ->
           Pin { channel = p.Routing_graph.channel; x = p.Routing_graph.x })
  |> List.sort compare

let to_string router =
  let fp = Router.floorplan router in
  let netlist = Floorplan.netlist fp in
  let buf = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# bgr routes v1";
  for net = 0 to Netlist.n_nets netlist - 1 do
    let name = (Netlist.net netlist net).Netlist.net_name in
    List.iter
      (function
        | Trunk { channel; x_lo; x_hi } -> line "net %s trunk %d %d %d" name channel x_lo x_hi
        | Branch { row; x } -> line "net %s branch %d %d" name row x
        | Pin { channel; x } -> line "net %s pin %d %d" name channel x)
      (descs_of_net router net)
  done;
  Buffer.contents buf

let write router ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string router))

let parse ~netlist text =
  let by_name = Hashtbl.create 64 in
  Array.iter
    (fun (n : Netlist.net) -> Hashtbl.replace by_name n.Netlist.net_name n.Netlist.net_id)
    (Netlist.nets netlist);
  let acc = Hashtbl.create 64 in
  let order = ref [] in
  let add ~line name d =
    match Hashtbl.find_opt by_name name with
    | None -> Lineio.fail ~line "unknown net %s" name
    | Some id ->
      if not (Hashtbl.mem acc id) then order := id :: !order;
      Hashtbl.replace acc id (d :: Option.value (Hashtbl.find_opt acc id) ~default:[])
  in
  let on_line (line, tokens) =
    match tokens with
    | [ "net"; name; "trunk"; c; lo; hi ] ->
      add ~line name
        (Trunk
           { channel = Lineio.int_field ~line ~what:"channel" c;
             x_lo = Lineio.int_field ~line ~what:"x_lo" lo;
             x_hi = Lineio.int_field ~line ~what:"x_hi" hi })
    | [ "net"; name; "branch"; r; x ] ->
      add ~line name
        (Branch
           { row = Lineio.int_field ~line ~what:"row" r;
             x = Lineio.int_field ~line ~what:"x" x })
    | [ "net"; name; "pin"; c; x ] ->
      add ~line name
        (Pin
           { channel = Lineio.int_field ~line ~what:"channel" c;
             x = Lineio.int_field ~line ~what:"x" x })
    | t :: _ -> Lineio.fail ~line "unknown directive %S" t
    | [] -> ()
  in
  List.iter on_line (Lineio.tokenize text);
  List.rev_map (fun id -> (id, List.sort compare (Hashtbl.find acc id))) !order

let matches_router router parsed =
  let fp = Router.floorplan router in
  let netlist = Floorplan.netlist fp in
  let n_nets = Netlist.n_nets netlist in
  List.length parsed = n_nets
  && List.for_all (fun (net, descs) -> descs = descs_of_net router net) parsed
