(** Text serialization of cell libraries, so a design bundle can carry
    its own masters instead of referencing a built-in library by name.

    Format (`# bgr library v1`):
    {v
    name ecl_default
    cell INV1 comb width 2
    in A fanin 1 offset 0 access both
    out Z tf 6 td 0.9 offset 1
    arc A Z 55
    cell DFF ff width 6 seq D CK
    ...
    cell FEED feed width 1
    v}

    [in]/[out]/[arc] lines attach to the most recent [cell]. *)

val to_string : Cell_lib.t -> string

val write : Cell_lib.t -> path:string -> unit

val of_string : string -> Cell_lib.t
(** @raise Lineio.Parse_error on malformed text, [Cell.Malformed] on
    invalid masters. *)

val read : string -> Cell_lib.t
(** Read from a file path. *)

val of_string_result : ?file:string -> string -> (Cell_lib.t, Bgr_error.t) result
(** Exception-free variant of {!of_string}; see {!Lineio.protect}. *)

val read_result : string -> (Cell_lib.t, Bgr_error.t) result
