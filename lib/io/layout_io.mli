(** Text serialization of placements (floorplans).

    Format (`# bgr placement v1`):
    {v
    rows 8
    width 120
    cell i0 0 12          # instance, row, origin column
    feed 0 15 0           # row, column, width flag (0 = unflagged)
    v}

    Instances are named; reading resolves them against the given
    netlist and rebuilds a validated {!Floorplan.t}. *)

val to_string : Floorplan.t -> string

val write : Floorplan.t -> path:string -> unit

val of_string : netlist:Netlist.t -> dims:Dims.t -> string -> Floorplan.t
(** @raise Lineio.Parse_error on malformed text,
    [Floorplan.Overlap] on illegal geometry. *)

val read : netlist:Netlist.t -> dims:Dims.t -> path:string -> Floorplan.t

val of_string_result :
  ?file:string -> netlist:Netlist.t -> dims:Dims.t -> string -> (Floorplan.t, Bgr_error.t) result
(** Exception-free variant of {!of_string}; see {!Lineio.protect}. *)

val read_result :
  netlist:Netlist.t -> dims:Dims.t -> path:string -> (Floorplan.t, Bgr_error.t) result
