(** Text serialization of netlists.

    Format (`# bgr netlist v1`):
    {v
    library ecl_default
    port CLK south
    port IN0 south hint 12
    inst ff0 DFF
    net n1 drive ff0.Q sink g1.A sink port:OUT0
    net clk pitch 2 drive cb.Z sink ff0.CK
    diffpair z zn
    v}

    Endpoints are [inst.term] or [port:NAME]; nets list the driver
    first.  Writing then reading reproduces the netlist exactly (same
    ids, same order — asserted by the round-trip tests). *)

val endpoint_name : Netlist.t -> Netlist.endpoint -> string
(** Human-readable endpoint: [inst.term] or [port:NAME]. *)

val to_string : Netlist.t -> string

val write : Netlist.t -> path:string -> unit

val of_string : libraries:Cell_lib.t list -> string -> Netlist.t
(** @raise Lineio.Parse_error on malformed text (including an unknown
    library name), [Netlist.Invalid] on structurally bad designs. *)

val read : libraries:Cell_lib.t list -> path:string -> Netlist.t

val of_string_result :
  ?file:string -> libraries:Cell_lib.t list -> string -> (Netlist.t, Bgr_error.t) result
(** Exception-free variant of {!of_string}; see {!Lineio.protect}. *)

val read_result : libraries:Cell_lib.t list -> path:string -> (Netlist.t, Bgr_error.t) result
