(** Export of routed results — the interchange format downstream tools
    (detailed routers, extractors) would consume.

    Format (`# bgr routes v1`):
    {v
    net n5 trunk 2 10 18      # channel, left column, right column
    net n5 branch 1 12        # feedthrough: row, column
    net n5 pin 2 14           # connection point: channel, column
    v}

    Net references are by name.  {!parse} returns the raw per-net
    descriptors; {!matches_router} checks an export against a router's
    live trees (the round-trip test in the suite). *)

type desc =
  | Trunk of { channel : int; x_lo : int; x_hi : int }
  | Branch of { row : int; x : int }
  | Pin of { channel : int; x : int }

val to_string : Router.t -> string
(** Dump every net's current tree. *)

val write : Router.t -> path:string -> unit

val parse : netlist:Netlist.t -> string -> (int * desc list) list
(** Per-net descriptors, net ids resolved by name, in file order.
    @raise Lineio.Parse_error on malformed text or unknown nets. *)

val matches_router : Router.t -> (int * desc list) list -> bool
(** Whether the parsed routes describe exactly the router's trees. *)
