let side_name = function Netlist.South -> "south" | Netlist.North -> "north"

let endpoint_name netlist = function
  | Netlist.Pin p ->
    Printf.sprintf "%s.%s" (Netlist.instance netlist p.Netlist.inst).Netlist.inst_name p.Netlist.term
  | Netlist.Port q -> "port:" ^ (Netlist.port netlist q).Netlist.port_name

let to_string netlist =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# bgr netlist v1";
  line "library %s" (Cell_lib.name (Netlist.library netlist));
  Array.iter
    (fun (p : Netlist.port) ->
      match p.Netlist.column_hint with
      | None -> line "port %s %s" p.Netlist.port_name (side_name p.Netlist.side)
      | Some h -> line "port %s %s hint %d" p.Netlist.port_name (side_name p.Netlist.side) h)
    (Netlist.ports netlist);
  Array.iter
    (fun (i : Netlist.instance) -> line "inst %s %s" i.Netlist.inst_name i.Netlist.master.Cell.name)
    (Netlist.instances netlist);
  Array.iter
    (fun (n : Netlist.net) ->
      let pitch = if n.Netlist.pitch = 1 then "" else Printf.sprintf " pitch %d" n.Netlist.pitch in
      let sinks =
        List.map (fun s -> " sink " ^ endpoint_name netlist s) n.Netlist.sinks |> String.concat ""
      in
      line "net %s%s drive %s%s" n.Netlist.net_name pitch (endpoint_name netlist n.Netlist.driver)
        sinks)
    (Netlist.nets netlist);
  Array.iter
    (fun (n : Netlist.net) ->
      match n.Netlist.diff_partner with
      | Some p when p > n.Netlist.net_id ->
        line "diffpair %s %s" n.Netlist.net_name (Netlist.net netlist p).Netlist.net_name
      | Some _ | None -> ())
    (Netlist.nets netlist);
  Buffer.contents buf

let write netlist ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string netlist))

type ctx = {
  builder : Netlist.builder;
  insts : (string, int) Hashtbl.t;
  ports : (string, int) Hashtbl.t;
  nets : (string, int) Hashtbl.t;
}

let parse_endpoint ctx ~line token =
  if String.length token > 5 && String.sub token 0 5 = "port:" then begin
    let name = String.sub token 5 (String.length token - 5) in
    match Hashtbl.find_opt ctx.ports name with
    | Some q -> Netlist.Port q
    | None -> Lineio.fail ~line "unknown port %s" name
  end
  else begin
    match String.index_opt token '.' with
    | None -> Lineio.fail ~line "endpoint %S is neither inst.term nor port:NAME" token
    | Some i ->
      let inst_name = String.sub token 0 i in
      let term = String.sub token (i + 1) (String.length token - i - 1) in
      (match Hashtbl.find_opt ctx.insts inst_name with
      | Some inst -> Netlist.Pin { Netlist.inst; term }
      | None -> Lineio.fail ~line "unknown instance %s" inst_name)
  end

let parse_side ~line = function
  | "south" -> Netlist.South
  | "north" -> Netlist.North
  | s -> Lineio.fail ~line "side must be south or north, got %S" s

(* sink lists: [sink EP]* with an optional leading [pitch N]. *)
let rec parse_sinks ctx ~line acc = function
  | [] -> List.rev acc
  | "sink" :: ep :: rest -> parse_sinks ctx ~line (parse_endpoint ctx ~line ep :: acc) rest
  | t :: _ -> Lineio.fail ~line "unexpected token %S in net line" t

let of_string ~libraries text =
  let lines = Lineio.tokenize text in
  let library = ref None in
  let ctx = ref None in
  let pending_pairs = ref [] in
  let get_ctx ~line =
    match !ctx with
    | Some c -> c
    | None -> Lineio.fail ~line "the library line must come first"
  in
  let on_line (line, tokens) =
    match tokens with
    | [ "library"; name ] ->
      (match List.find_opt (fun l -> Cell_lib.name l = name) libraries with
      | Some l ->
        library := Some l;
        ctx :=
          Some
            { builder = Netlist.builder ~library:l;
              insts = Hashtbl.create 64;
              ports = Hashtbl.create 16;
              nets = Hashtbl.create 64 }
      | None -> Lineio.fail ~line "unknown cell library %S" name)
    | "port" :: name :: side :: rest ->
      let c = get_ctx ~line in
      let column_hint =
        match rest with
        | [] -> None
        | [ "hint"; h ] -> Some (Lineio.int_field ~line ~what:"port hint" h)
        | _ -> Lineio.fail ~line "port syntax: port NAME SIDE [hint N]"
      in
      let id =
        match column_hint with
        | None -> Netlist.add_port c.builder ~name ~side:(parse_side ~line side) ()
        | Some h -> Netlist.add_port c.builder ~name ~side:(parse_side ~line side) ~column_hint:h ()
      in
      Hashtbl.replace c.ports name id
    | [ "inst"; name; cell ] ->
      let c = get_ctx ~line in
      (try Hashtbl.replace c.insts name (Netlist.add_instance c.builder ~name ~cell)
       with Netlist.Invalid m -> Lineio.fail ~line "%s" m)
    | "net" :: name :: rest ->
      let c = get_ctx ~line in
      let pitch, rest =
        match rest with
        | "pitch" :: p :: rest -> (Lineio.int_field ~line ~what:"pitch" p, rest)
        | rest -> (1, rest)
      in
      (match rest with
      | "drive" :: driver :: sink_tokens ->
        let driver = parse_endpoint c ~line driver in
        let sinks = parse_sinks c ~line [] sink_tokens in
        (try Hashtbl.replace c.nets name (Netlist.add_net c.builder ~name ~driver ~sinks ~pitch ())
         with Netlist.Invalid m -> Lineio.fail ~line "%s" m)
      | _ -> Lineio.fail ~line "net syntax: net NAME [pitch N] drive EP [sink EP]*")
    | [ "diffpair"; a; b ] ->
      let c = get_ctx ~line in
      pending_pairs := (line, c, a, b) :: !pending_pairs
    | t :: _ -> Lineio.fail ~line "unknown directive %S" t
    | [] -> ()
  in
  List.iter on_line lines;
  (match !library with
  | None -> Lineio.fail ~line:1 "missing library line"
  | Some _ -> ());
  List.iter
    (fun (line, c, a, b) ->
      let net name =
        match Hashtbl.find_opt c.nets name with
        | Some n -> n
        | None -> Lineio.fail ~line "diffpair references unknown net %s" name
      in
      try Netlist.pair_differential c.builder (net a) (net b)
      with Netlist.Invalid m -> Lineio.fail ~line "%s" m)
    (List.rev !pending_pairs);
  match !ctx with
  | Some c -> Netlist.freeze c.builder
  | None -> assert false

let read ~libraries ~path = of_string ~libraries (Lineio.read_all path)

let of_string_result ?file ~libraries text =
  Lineio.protect ?file (fun () -> of_string ~libraries text)

let read_result ~libraries ~path =
  Lineio.protect ~file:path (fun () -> of_string ~libraries (Lineio.read_all path))
