let access_name = function
  | Cell.Top_only -> "top"
  | Cell.Bottom_only -> "bottom"
  | Cell.Both_sides -> "both"

let kind_name = function
  | Cell.Combinational -> "comb"
  | Cell.Flipflop -> "ff"
  | Cell.Feed_through -> "feed"

let to_string lib =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# bgr library v1";
  line "name %s" (Cell_lib.name lib);
  List.iter
    (fun (c : Cell.t) ->
      let seq =
        if c.Cell.sequential_inputs = [] then ""
        else " seq " ^ String.concat " " c.Cell.sequential_inputs
      in
      line "cell %s %s width %d%s" c.Cell.name (kind_name c.Cell.kind) c.Cell.width seq;
      Array.iter
        (fun (t : Cell.terminal) ->
          match t.Cell.dir with
          | Cell.Input ->
            line "in %s fanin %.12g offset %d access %s" t.Cell.t_name t.Cell.fanin_ff
              t.Cell.offset (access_name t.Cell.access)
          | Cell.Output ->
            line "out %s tf %.12g td %.12g offset %d access %s" t.Cell.t_name t.Cell.tf_ps_per_ff
              t.Cell.td_ps_per_ff t.Cell.offset (access_name t.Cell.access))
        c.Cell.terminals;
      List.iter
        (fun (a : Cell.arc) ->
          line "arc %s %s %.12g" a.Cell.from_input a.Cell.to_output a.Cell.intrinsic_ps)
        c.Cell.arcs)
    (Cell_lib.cells lib);
  Buffer.contents buf

let write lib ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string lib))

let parse_access ~line = function
  | "top" -> Cell.Top_only
  | "bottom" -> Cell.Bottom_only
  | "both" -> Cell.Both_sides
  | s -> Lineio.fail ~line "access must be top|bottom|both, got %S" s

let parse_kind ~line = function
  | "comb" -> Cell.Combinational
  | "ff" -> Cell.Flipflop
  | "feed" -> Cell.Feed_through
  | s -> Lineio.fail ~line "cell kind must be comb|ff|feed, got %S" s

type partial = {
  p_line : int;
  p_name : string;
  p_kind : Cell.kind;
  p_width : int;
  p_seq : string list;
  mutable p_terminals : Cell.terminal list;
  mutable p_arcs : Cell.arc list;
}

let of_string text =
  let name = ref None in
  let cells = ref [] in
  let current = ref None in
  let close () =
    match !current with
    | None -> ()
    | Some p ->
      cells :=
        Cell.make ~name:p.p_name ~kind:p.p_kind ~width:p.p_width
          ~terminals:(List.rev p.p_terminals) ~arcs:(List.rev p.p_arcs)
          ~sequential_inputs:p.p_seq ()
        :: !cells;
      current := None
  in
  let with_current ~line f =
    match !current with
    | None -> Lineio.fail ~line "terminal/arc line before any cell line"
    | Some p -> f p
  in
  let on_line (line, tokens) =
    match tokens with
    | [ "name"; n ] -> name := Some n
    | "cell" :: cname :: kind :: "width" :: w :: rest ->
      close ();
      let seq =
        match rest with
        | [] -> []
        | "seq" :: pins -> pins
        | t :: _ -> Lineio.fail ~line "unexpected token %S after cell width" t
      in
      current :=
        Some
          { p_line = line;
            p_name = cname;
            p_kind = parse_kind ~line kind;
            p_width = Lineio.int_field ~line ~what:"cell width" w;
            p_seq = seq;
            p_terminals = [];
            p_arcs = [] }
    | [ "in"; tname; "fanin"; f; "offset"; o; "access"; a ] ->
      with_current ~line (fun p ->
          let base =
            Cell.input_t ~name:tname
              ~fanin_ff:(Lineio.float_field ~line ~what:"fanin" f)
              ~offset:(Lineio.int_field ~line ~what:"offset" o)
          in
          p.p_terminals <- { base with Cell.access = parse_access ~line a } :: p.p_terminals)
    | [ "out"; tname; "tf"; tf; "td"; td; "offset"; o; "access"; a ] ->
      with_current ~line (fun p ->
          let base =
            Cell.output_t ~name:tname
              ~tf:(Lineio.float_field ~line ~what:"tf" tf)
              ~td:(Lineio.float_field ~line ~what:"td" td)
              ~offset:(Lineio.int_field ~line ~what:"offset" o)
          in
          p.p_terminals <- { base with Cell.access = parse_access ~line a } :: p.p_terminals)
    | [ "arc"; from_input; to_output; t0 ] ->
      with_current ~line (fun p ->
          p.p_arcs <-
            { Cell.from_input; to_output; intrinsic_ps = Lineio.float_field ~line ~what:"arc T0" t0 }
            :: p.p_arcs)
    | t :: _ -> Lineio.fail ~line "unknown directive %S" t
    | [] -> ()
  in
  List.iter on_line (Lineio.tokenize text);
  close ();
  match !name with
  | None -> Lineio.fail ~line:1 "missing library name line"
  | Some name -> Cell_lib.make ~name ~cells:(List.rev !cells)

let read path = of_string (Lineio.read_all path)

let of_string_result ?file text = Lineio.protect ?file (fun () -> of_string text)

let read_result path = Lineio.protect ~file:path (fun () -> of_string (Lineio.read_all path))
