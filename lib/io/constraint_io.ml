let node_name netlist = function
  | Delay_graph.Out p | Delay_graph.Seq_in p ->
    Printf.sprintf "%s.%s" (Netlist.instance netlist p.Netlist.inst).Netlist.inst_name p.Netlist.term
  | Delay_graph.Port_in q | Delay_graph.Port_out q ->
    "port:" ^ (Netlist.port netlist q).Netlist.port_name

let to_string netlist constraints =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# bgr constraints v1";
  List.iter
    (fun (pc : Path_constraint.t) ->
      line "constraint %s limit %.12g" pc.Path_constraint.cname pc.Path_constraint.limit_ps;
      List.iter (fun n -> line "source %s" (node_name netlist n)) pc.Path_constraint.sources;
      List.iter (fun n -> line "sink %s" (node_name netlist n)) pc.Path_constraint.sinks)
    constraints;
  Buffer.contents buf

let write netlist constraints ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string netlist constraints))

(* Resolve a terminal reference to a delay-graph node, using the
   netlist for directions and port roles. *)
let resolve_node netlist ~line ~role token =
  if String.length token > 5 && String.sub token 0 5 = "port:" then begin
    let name = String.sub token 5 (String.length token - 5) in
    let found = ref None in
    Array.iter
      (fun (p : Netlist.port) -> if p.Netlist.port_name = name then found := Some p.Netlist.port_id)
      (Netlist.ports netlist);
    match !found with
    | None -> Lineio.fail ~line "unknown port %s" name
    | Some q ->
      (* A port's role follows its use on the attached net. *)
      let net = Netlist.net netlist (Netlist.net_of_port netlist q) in
      let drives = net.Netlist.driver = Netlist.Port q in
      (match (role, drives) with
      | `Source, true -> Delay_graph.Port_in q
      | `Sink, false -> Delay_graph.Port_out q
      | `Source, false -> Lineio.fail ~line "port %s is an output, not a path source" name
      | `Sink, true -> Lineio.fail ~line "port %s is an input, not a path sink" name)
  end
  else begin
    match String.index_opt token '.' with
    | None -> Lineio.fail ~line "terminal %S is neither inst.term nor port:NAME" token
    | Some i ->
      let inst_name = String.sub token 0 i in
      let term = String.sub token (i + 1) (String.length token - i - 1) in
      let found = ref None in
      Array.iter
        (fun (inst : Netlist.instance) ->
          if inst.Netlist.inst_name = inst_name then found := Some inst)
        (Netlist.instances netlist);
      (match !found with
      | None -> Lineio.fail ~line "unknown instance %s" inst_name
      | Some inst ->
        let master = inst.Netlist.master in
        let t =
          match Cell.terminal master term with
          | t -> t
          | exception Not_found -> Lineio.fail ~line "instance %s has no terminal %s" inst_name term
        in
        let pin = { Netlist.inst = inst.Netlist.inst_id; term } in
        (match (role, t.Cell.dir) with
        | `Source, Cell.Output -> Delay_graph.Out pin
        | `Sink, Cell.Input when Cell.is_sequential_input master term -> Delay_graph.Seq_in pin
        | `Sink, Cell.Input ->
          Lineio.fail ~line "%s.%s is a combinational input; paths end at sequential inputs" inst_name
            term
        | `Source, Cell.Input -> Lineio.fail ~line "%s.%s is an input, not a path source" inst_name term
        | `Sink, Cell.Output -> Lineio.fail ~line "%s.%s is an output, not a path sink" inst_name term))
  end

type partial = {
  p_line : int;
  p_name : string;
  p_limit : float;
  mutable p_sources : Delay_graph.node list;
  mutable p_sinks : Delay_graph.node list;
}

let of_string ~netlist text =
  let finished = ref [] in
  let current = ref None in
  let close () =
    match !current with
    | None -> ()
    | Some p ->
      (try
         finished :=
           Path_constraint.make ~name:p.p_name ~sources:(List.rev p.p_sources)
             ~sinks:(List.rev p.p_sinks) ~limit_ps:p.p_limit
           :: !finished
       with Path_constraint.Bad_constraint m -> Lineio.fail ~line:p.p_line "%s" m);
      current := None
  in
  let on_line (line, tokens) =
    match tokens with
    | [ "constraint"; name; "limit"; l ] ->
      close ();
      current :=
        Some
          { p_line = line;
            p_name = name;
            p_limit = Lineio.float_field ~line ~what:"limit" l;
            p_sources = [];
            p_sinks = [] }
    | [ "source"; t ] -> (
      match !current with
      | None -> Lineio.fail ~line "source before any constraint line"
      | Some p -> p.p_sources <- resolve_node netlist ~line ~role:`Source t :: p.p_sources)
    | [ "sink"; t ] -> (
      match !current with
      | None -> Lineio.fail ~line "sink before any constraint line"
      | Some p -> p.p_sinks <- resolve_node netlist ~line ~role:`Sink t :: p.p_sinks)
    | t :: _ -> Lineio.fail ~line "unknown directive %S" t
    | [] -> ()
  in
  List.iter on_line (Lineio.tokenize text);
  close ();
  List.rev !finished

let read ~netlist ~path = of_string ~netlist (Lineio.read_all path)

let of_string_result ?file ~netlist text =
  Lineio.protect ?file (fun () -> of_string ~netlist text)

let read_result ~netlist ~path =
  Lineio.protect ~file:path (fun () -> of_string ~netlist (Lineio.read_all path))
