(** Crash-safe routing runs: a run directory holding the design, the
    run manifest, the write-ahead deletion {!Journal} and the latest
    phase-boundary {!Snapshot}.

    {!route} is {!Flow.run} with persistence hooks installed: every
    primary deletion is journaled {e before} it is applied, and every
    completed phase fsyncs the journal and atomically replaces the
    snapshot.  {!resume} rebuilds the router from the stored design
    (the preparation pipeline is deterministic), restores the snapshot
    and/or replays the journal, truncates any torn journal tail with a
    recorded warning, and continues the run — finishing with the same
    {!Router.deletion_hash} as an uninterrupted run.

    Recovery rules:
    {ul
    {- With a snapshot: restore it, cross-check the rebuilt density
       charts against the recorded ones, skip the completed phases and
       discard journal records past the snapshot (the current phase
       re-runs deterministically from its boundary).}
    {- Without a snapshot (killed during [initial_route]): replay every
       intact journal record, verifying each record's
       [deletions_before]/[hash_before] chain against the live router,
       then let the run continue selecting from where the journal
       ends — [initial_route] is memoryless.}
    {- A torn final record (the kill landed mid-append) is truncated
       with a warning; corruption anywhere else is a structured
       [Parse] error.}} *)

val design_file : string
val manifest_file : string
val journal_file : string
val snapshot_file : string
(** File names inside a run directory: ["design.bgr"], ["MANIFEST"],
    ["journal.bgrj"], ["snapshot.bgrs"]. *)

val route :
  ?options:Router.options ->
  ?timing_driven:bool ->
  ?channel_algorithm:Flow.channel_algorithm ->
  ?budget:Budget.t ->
  ?on_quality:(Router.quality_sample -> unit) ->
  dir:string ->
  design_text:string ->
  Flow.input ->
  Flow.outcome
(** Run the full flow with persistence: create [dir] (if needed), store
    [design_text] and the manifest, journal every deletion and snapshot
    every phase boundary.  The routing result is bit-identical to
    {!Flow.run} with the same options.  [on_quality] is the quality
    hook of {!Flow.run} — a run recorded into a [.bgrq] log alongside
    the journal keeps the identical deletion hash. *)

type resume_report = {
  rr_outcome : Flow.outcome;
  rr_replayed : int;
      (** journal records re-applied edge by edge (killed during
          [initial_route]; [0] when a snapshot covered them) *)
  rr_discarded : int;
      (** intact post-snapshot records discarded — that phase re-ran
          deterministically from its boundary *)
  rr_completed_at_load : string list;
      (** phases already complete when the run resumed *)
  rr_warnings : string list;
      (** torn-tail truncations, discarded tails, missing files *)
}

val resume :
  ?domains:int ->
  ?channel_algorithm:Flow.channel_algorithm ->
  ?budget:Budget.t ->
  ?on_quality:(Router.quality_sample -> unit) ->
  dir:string ->
  unit ->
  (resume_report, Bgr_error.t) result
(** Resume an interrupted {!route} from its run directory and carry it
    to completion (the resumed run keeps journaling and snapshotting,
    so a resume can itself be killed and resumed).  [domains] overrides
    the scoring-engine domain count ([0] = auto); the deletion sequence
    is bit-identical for every value.  Errors are structured: an
    unreadable directory is [Io_error], a corrupt manifest, design,
    snapshot or journal body is [Parse], and a journal whose records
    contradict the rebuilt router's deletion-hash chain is [Internal]. *)
