type t = {
  s_phases : string list;
  s_deletions : int;
  s_del_hash : int;
  s_live : int list array;
  s_densities : (int * int) array array;
}

let of_checkpoint ~phases ~dens ck =
  let deletions, del_hash = Router.checkpoint_stats ck in
  { s_phases = phases;
    s_deletions = deletions;
    s_del_hash = del_hash;
    s_live = Router.checkpoint_live ck;
    s_densities =
      Array.init (Density.n_channels dens) (fun c -> Density.chart dens ~channel:c) }

let of_router ~phases router =
  of_checkpoint ~phases ~dens:(Router.density router) (Router.checkpoint router)

let to_checkpoint t =
  Router.checkpoint_make ~deletions:t.s_deletions ~del_hash:t.s_del_hash ~live:t.s_live

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "bgr-snapshot 1\n";
  Buffer.add_string b "phases";
  List.iter
    (fun p ->
      Buffer.add_char b ' ';
      Buffer.add_string b p)
    t.s_phases;
  Buffer.add_char b '\n';
  Printf.bprintf b "deletions %d\n" t.s_deletions;
  Printf.bprintf b "hash %d\n" t.s_del_hash;
  Printf.bprintf b "nets %d\n" (Array.length t.s_live);
  Array.iteri
    (fun n live ->
      Printf.bprintf b "net %d %d" n (List.length live);
      List.iter (fun e -> Printf.bprintf b " %d" e) live;
      Buffer.add_char b '\n')
    t.s_live;
  Printf.bprintf b "densities %d\n" (Array.length t.s_densities);
  Array.iteri
    (fun c chart ->
      Printf.bprintf b "chart %d dM" c;
      Array.iter (fun (d_max, _) -> Printf.bprintf b " %d" d_max) chart;
      Buffer.add_char b '\n';
      Printf.bprintf b "chart %d dm" c;
      Array.iter (fun (_, d_min) -> Printf.bprintf b " %d" d_min) chart;
      Buffer.add_char b '\n')
    t.s_densities;
  let body = Buffer.contents b in
  Printf.sprintf "%scrc %08x\n" body (Crc32.string body)

exception Bad of string

let of_string ?file s =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  match
    (* Split off the [crc XXXXXXXX] trailer (the last line). *)
    let len = String.length s in
    let e = if len > 0 && s.[len - 1] = '\n' then len - 1 else len in
    if e <= 0 then fail "empty snapshot";
    let body, trailer =
      match String.rindex_from_opt s (e - 1) '\n' with
      | None -> fail "snapshot has no CRC trailer"
      | Some i -> (String.sub s 0 (i + 1), String.sub s (i + 1) (e - i - 1))
    in
    let crc =
      match String.split_on_char ' ' (String.trim trailer) with
      | [ "crc"; hex ] -> (
        match int_of_string_opt ("0x" ^ hex) with
        | Some v -> v
        | None -> fail "snapshot CRC trailer is not hexadecimal")
      | _ -> fail "snapshot has no CRC trailer"
    in
    if Crc32.string body <> crc then fail "snapshot CRC mismatch (torn or corrupted write)";
    let int_tok what tok =
      match int_of_string_opt tok with
      | Some v -> v
      | None -> fail "snapshot: %s wants an integer, got %S" what tok
    in
    let lines =
      String.split_on_char '\n' body
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" then None
             else Some (String.split_on_char ' ' l |> List.filter (fun t -> t <> "")))
    in
    let expect_header = function
      | [ "bgr-snapshot"; "1" ] :: rest -> rest
      | _ -> fail "not a bgr snapshot (or unsupported version)"
    in
    let lines = expect_header lines in
    let phases, lines =
      match lines with
      | ("phases" :: ps) :: rest -> (ps, rest)
      | _ -> fail "snapshot: expected a phases line"
    in
    let scalar name lines =
      match lines with
      | [ key; v ] :: rest when key = name -> (int_tok name v, rest)
      | _ -> fail "snapshot: expected a %s line" name
    in
    let deletions, lines = scalar "deletions" lines in
    let hash, lines = scalar "hash" lines in
    let n_nets, lines = scalar "nets" lines in
    if n_nets < 0 then fail "snapshot: negative net count";
    let live = Array.make n_nets [] in
    let lines = ref lines in
    for n = 0 to n_nets - 1 do
      match !lines with
      | ("net" :: id :: count :: edges) :: rest ->
        if int_tok "net id" id <> n then fail "snapshot: net lines out of order at %d" n;
        let edges = List.map (int_tok "edge id") edges in
        if List.length edges <> int_tok "edge count" count then
          fail "snapshot: net %d edge count disagrees with its list" n;
        live.(n) <- edges;
        lines := rest
      | _ -> fail "snapshot: expected a net line for net %d" n
    done;
    let n_channels, rest = scalar "densities" !lines in
    if n_channels < 0 then fail "snapshot: negative channel count";
    lines := rest;
    let densities =
      Array.init n_channels (fun c ->
          match !lines with
          | ("chart" :: id1 :: "dM" :: maxs) :: ("chart" :: id2 :: "dm" :: mins) :: rest ->
            if int_tok "channel" id1 <> c || int_tok "channel" id2 <> c then
              fail "snapshot: chart lines out of order at channel %d" c;
            let maxs = List.map (int_tok "d_M") maxs and mins = List.map (int_tok "d_m") mins in
            if List.length maxs <> List.length mins then
              fail "snapshot: chart widths disagree in channel %d" c;
            lines := rest;
            Array.of_list (List.combine maxs mins)
          | _ -> fail "snapshot: expected two chart lines for channel %d" c)
    in
    if !lines <> [] then fail "snapshot: trailing garbage after the charts";
    { s_phases = phases;
      s_deletions = deletions;
      s_del_hash = hash;
      s_live = live;
      s_densities = densities }
  with
  | t -> Ok t
  | exception Bad m -> Error (Bgr_error.make ?file ~phase:"persist" Bgr_error.Parse "%s" m)

let m_bytes =
  Obs.Metrics.gauge "bgr_snapshot_bytes" ~help:"Size of the most recent snapshot, in bytes"

let m_write =
  Obs.Metrics.histogram "bgr_snapshot_write_seconds"
    ~help:"Latency of one atomic snapshot write (serialize + fsync + rename)"

let write ~path t =
  Fault.check ~phase:"persist" "persist.snapshot";
  Obs.Trace.span "persist:snapshot" @@ fun () ->
  let t0 = if Obs.enabled () then Obs.now_s () else 0.0 in
  let tmp = path ^ ".tmp" in
  match
    let s = to_string t in
    Obs.Metrics.set m_bytes (float_of_int (String.length s));
    let oc = open_out_bin tmp in
    output_string oc s;
    flush oc;
    Fault.check ~phase:"persist" "persist.fsync";
    (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
    close_out oc;
    Sys.rename tmp path;
    Flight.record Flight.k_snapshot ~a:0 ~b:0 ~c:0 ~d:(String.length s)
  with
  | () ->
    if Obs.enabled () then Obs.Metrics.observe m_write (Obs.now_s () -. t0);
    Obs.Trace.add_attr "path" (Obs.Trace.Str path)
  | exception Sys_error msg ->
    Bgr_error.raise_error ~phase:"persist" ~file:path Bgr_error.Io_error "%s" msg

let load ~path =
  match Lineio.read_all path with
  | s -> of_string ~file:path s
  | exception Sys_error msg ->
    Error (Bgr_error.make ~file:path ~phase:"persist" Bgr_error.Io_error "%s" msg)
