(** The write-ahead deletion journal.

    A journal file is the magic header ["BGRJ1\n"] followed by framed
    records, each

    {v [u32 length | payload | u32 CRC-32(payload)] v}

    (all integers big-endian).  The payload is a fixed 26-byte encoding
    of one {e committed primary deletion}: phase code (u8), area-mode
    flag (u8), net id (u32), edge id (u32), deletions-before (u64) and
    deletion-hash-before (u64).  Cascaded prunes and the mirrored
    deletion of a differential-pair partner are deterministic
    consequences of the primary deletion, so a mirrored pair costs one
    record, not two, and replay regenerates the rest.

    The record is appended and flushed {e before} the deletion is
    applied (write-ahead); [fsync] happens at phase boundaries via
    {!sync}.  A process killed mid-append can leave a torn final
    record; {!read} truncates it with a recorded warning.  Corruption
    {e before} the final record is a structured error — that file was
    not produced by an append-only writer dying once.

    Fault-injection sites: [persist.append] (head of {!append}, before
    any byte is written) and [persist.fsync] (head of {!sync}). *)

type record = {
  r_phase : string;
  r_area_mode : bool;
  r_net : int;
  r_edge : int;
  r_deletions_before : int;
  r_hash_before : int;
}

val magic : string
val header_bytes : int

val payload_len : int
(** Fixed payload size (26 bytes). *)

val encode_frame : record -> string
(** One framed record: length prefix, payload, CRC. *)

(** {1 Writing} *)

type writer

val create : path:string -> writer
(** Truncate/create the file and write the header. *)

val reopen : path:string -> keep_bytes:int -> writer
(** Truncate the file to [keep_bytes] (discarding a torn tail and any
    records superseded by a snapshot) and position for appending — the
    resume path. *)

val append : writer -> record -> unit
(** Frame, write and flush one record.  Must be called from the
    orchestrating domain (the router's sequential apply step). *)

val sync : writer -> unit
(** Flush and [fsync] — called at phase boundaries, before the
    snapshot is written. *)

val close : writer -> unit
(** Flush and close (idempotent). *)

(** {1 Reading} *)

type read_result = {
  records : (record * int) list;
      (** intact records in file order, each with the byte offset just
          past its frame *)
  valid_bytes : int;  (** offset past the last intact record *)
  torn : bool;  (** the file ended inside a record *)
  warnings : string list;  (** human-readable note per anomaly *)
}

val read_string : ?file:string -> string -> (read_result, Bgr_error.t) result
(** Parse journal bytes.  A bad header or mid-file corruption is
    [Error _] (code [Parse]); a torn {e final} record sets [torn] and a
    warning, with [valid_bytes] marking the truncation point. *)

val read : path:string -> (read_result, Bgr_error.t) result
