let design_file = "design.bgr"
let manifest_file = "MANIFEST"
let journal_file = "journal.bgrj"
let snapshot_file = "snapshot.bgrs"

let ( / ) = Filename.concat

let io_fail path msg =
  Bgr_error.raise_error ~phase:"persist" ~file:path Bgr_error.Io_error "%s" msg

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) -> io_fail dir (Unix.error_message e)

let write_file_atomic path s =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    output_string oc s;
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
    close_out oc;
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error msg -> io_fail path msg

(* --- the run manifest ------------------------------------------------ *)

let manifest_string ~timing_driven (o : Router.options) =
  let est =
    match o.cl_estimator with
    | Router.Tentative_tree -> "tentative_tree"
    | Router.Star_bbox -> "star_bbox"
  and dm =
    match o.delay_model with
    | Router.Lumped_c -> "lumped_c"
    | Router.Elmore_rc -> "elmore_rc"
  in
  Printf.sprintf
    "bgr-manifest 1\n\
     timing_driven %b\n\
     cl_estimator %s\n\
     delay_model %s\n\
     area_first_ordering %b\n\
     max_recover_passes %d\n\
     max_delay_passes %d\n\
     max_area_passes %d\n"
    timing_driven est dm o.area_first_ordering o.max_recover_passes o.max_delay_passes
    o.max_area_passes

exception Bad of string

let parse_manifest ?file s =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  match
    let kv =
      String.split_on_char '\n' s
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" then None
             else
               match String.index_opt l ' ' with
               | None -> fail "manifest line %S has no value" l
               | Some i ->
                 Some
                   (String.sub l 0 i, String.trim (String.sub l i (String.length l - i))))
    in
    (match kv with
    | ("bgr-manifest", "1") :: _ -> ()
    | _ -> fail "not a bgr run manifest (or unsupported version)");
    let get k =
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> fail "manifest is missing the %s field" k
    in
    let bool_of k =
      match get k with
      | "true" -> true
      | "false" -> false
      | v -> fail "manifest field %s wants a boolean, got %S" k v
    in
    let int_of k =
      match int_of_string_opt (get k) with
      | Some v -> v
      | None -> fail "manifest field %s wants an integer, got %S" k (get k)
    in
    let cl_estimator =
      match get "cl_estimator" with
      | "tentative_tree" -> Router.Tentative_tree
      | "star_bbox" -> Router.Star_bbox
      | v -> fail "manifest: unknown cl_estimator %S" v
    and delay_model =
      match get "delay_model" with
      | "lumped_c" -> Router.Lumped_c
      | "elmore_rc" -> Router.Elmore_rc
      | v -> fail "manifest: unknown delay_model %S" v
    in
    let options =
      { Router.default_options with
        cl_estimator;
        delay_model;
        area_first_ordering = bool_of "area_first_ordering";
        max_recover_passes = int_of "max_recover_passes";
        max_delay_passes = int_of "max_delay_passes";
        max_area_passes = int_of "max_area_passes" }
    in
    (bool_of "timing_driven", options)
  with
  | r -> Ok r
  | exception Bad m -> Error (Bgr_error.make ?file ~phase:"persist" Bgr_error.Parse "%s" m)

(* --- hooks ----------------------------------------------------------- *)

(* The commit hook is the write-ahead step: the record hits the journal
   (and the OS) before the router touches the graphs.  Appends must
   come from the orchestrating domain — the scoring pool only reads
   routing state — so a worker reaching this hook is a routing bug, not
   an I/O condition. *)
let install_hooks router w ~dir =
  Router.set_commit_hook router
    (Some
       (fun (dc : Router.deletion_commit) ->
         Par.assert_orchestrator ~what:"journal append";
         Journal.append w
           { Journal.r_phase = dc.dc_phase;
             r_area_mode = dc.dc_area_mode;
             r_net = dc.dc_net;
             r_edge = dc.dc_edge;
             r_deletions_before = dc.dc_deletions_before;
             r_hash_before = dc.dc_hash_before }));
  Router.set_checkpoint_hook router
    (Some
       (fun ~phase:_ ~completed ck ->
         Journal.sync w;
         Snapshot.write ~path:(dir / snapshot_file)
           (Snapshot.of_checkpoint ~phases:completed ~dens:(Router.density router) ck)))

let clear_hooks router =
  Router.set_commit_hook router None;
  Router.set_checkpoint_hook router None

let run_hooked ?budget ?channel_algorithm ?on_quality ?(completed = []) ~dir prep router w =
  let report =
    Fun.protect
      ~finally:(fun () ->
        clear_hooks router;
        Router.set_quality_hook router None;
        Journal.close w)
      (fun () ->
        install_hooks router w ~dir;
        Router.set_quality_hook router on_quality;
        Router.run ?budget ~completed router)
  in
  Flow.finish ?channel_algorithm ?on_quality prep router report

(* --- the persistent entry points ------------------------------------- *)

let route ?options ?timing_driven:(td = true) ?channel_algorithm ?budget ?on_quality ~dir
    ~design_text input =
  let options = match options with Some o -> o | None -> Router.default_options in
  ensure_dir dir;
  write_file_atomic (dir / design_file) design_text;
  write_file_atomic (dir / manifest_file) (manifest_string ~timing_driven:td options);
  (* A stale snapshot from an earlier run in the same directory must
     not survive into this run's recovery state. *)
  (try Sys.remove (dir / snapshot_file) with Sys_error _ -> ());
  let prep, router = Flow.prepare ~options ~timing_driven:td input in
  let w = Journal.create ~path:(dir / journal_file) in
  run_hooked ?budget ?channel_algorithm ?on_quality ~dir prep router w

type resume_report = {
  rr_outcome : Flow.outcome;
  rr_replayed : int;
  rr_discarded : int;
  rr_completed_at_load : string list;
  rr_warnings : string list;
}

let ( let* ) = Result.bind

let read_file path =
  match Lineio.read_all path with
  | s -> Ok s
  | exception Sys_error msg ->
    Error (Bgr_error.make ~file:path ~phase:"persist" Bgr_error.Io_error "%s" msg)

let internal fmt = Bgr_error.raise_error ~phase:"resume" Bgr_error.Internal fmt

let resume ?(domains = 0) ?channel_algorithm ?budget ?on_quality ~dir () =
  let* manifest_text = read_file (dir / manifest_file) in
  let* timing_driven, options =
    parse_manifest ~file:(dir / manifest_file) manifest_text
  in
  let options = { options with Router.domains } in
  let* design_text = read_file (dir / design_file) in
  let* design = Design_io.of_string_result ~file:(dir / design_file) design_text in
  let* design = Design_check.validate design in
  let* input =
    Lineio.protect ~file:(dir / design_file) (fun () -> Design_io.to_flow_input design)
  in
  let snap_path = dir / snapshot_file in
  let* snap =
    if Sys.file_exists snap_path then
      let* s = Snapshot.load ~path:snap_path in
      Ok (Some s)
    else Ok None
  in
  let journal_path = dir / journal_file in
  let journal_missing = not (Sys.file_exists journal_path) in
  let* jr =
    if journal_missing then
      Ok
        { Journal.records = [];
          valid_bytes = Journal.header_bytes;
          torn = false;
          warnings =
            [ "no journal file found; resuming from the snapshot state alone" ] }
    else Journal.read ~path:journal_path
  in
  Lineio.protect ~file:journal_path (fun () ->
      let warnings = ref jr.Journal.warnings in
      let warn fmt = Printf.ksprintf (fun m -> warnings := !warnings @ [ m ]) fmt in
      let prep, router = Flow.prepare ~options ~timing_driven input in
      let completed, replayed, discarded, keep_bytes =
        match snap with
        | Some s ->
          Router.restore router (Snapshot.to_checkpoint s);
          (* Densities were rebuilt from the live sets; the snapshot
             recorded the originals.  Any disagreement means the
             snapshot does not describe this design/options pair. *)
          let dens = Router.density router in
          if Array.length s.Snapshot.s_densities <> Density.n_channels dens then
            internal "snapshot has %d density charts, the design has %d channels"
              (Array.length s.Snapshot.s_densities)
              (Density.n_channels dens);
          Array.iteri
            (fun c recorded ->
              if Density.chart dens ~channel:c <> recorded then
                internal
                  "snapshot density chart of channel %d disagrees with the restored state"
                  c)
            s.Snapshot.s_densities;
          let kept, dropped =
            List.partition
              (fun ((r : Journal.record), _) -> r.r_deletions_before < s.s_deletions)
              jr.records
          in
          let keep_bytes =
            match List.rev kept with
            | (_, past) :: _ -> past
            | [] -> Journal.header_bytes
          in
          if dropped <> [] then
            warn
              "discarded %d journaled deletions recorded after the snapshot; the \
               interrupted phase re-runs deterministically from its boundary"
              (List.length dropped);
          (s.s_phases, 0, List.length dropped, keep_bytes)
        | None ->
          (* Killed during initial routing: no snapshot yet.  Replay
             the journal record by record, holding it to the recorded
             deletion-hash chain. *)
          List.iteri
            (fun i ((r : Journal.record), _) ->
              if r.r_phase <> "initial_route" then
                internal "journal record %d is from phase %s but there is no snapshot"
                  i r.r_phase;
              if
                r.r_deletions_before <> Router.n_deletions router
                || r.r_hash_before <> Router.deletion_hash router
              then
                internal
                  "journal record %d breaks the deletion-hash chain (recorded %d/%d, \
                   replayed %d/%d)"
                  i r.r_deletions_before r.r_hash_before (Router.n_deletions router)
                  (Router.deletion_hash router);
              Router.apply_deletion router ~net:r.r_net ~edge:r.r_edge)
            jr.records;
          ([], List.length jr.records, 0, jr.valid_bytes)
      in
      let w =
        if journal_missing then Journal.create ~path:journal_path
        else Journal.reopen ~path:journal_path ~keep_bytes
      in
      let outcome =
        run_hooked ?budget ?channel_algorithm ?on_quality ~completed ~dir prep router w
      in
      { rr_outcome = outcome;
        rr_replayed = replayed;
        rr_discarded = discarded;
        rr_completed_at_load = completed;
        rr_warnings = !warnings })
