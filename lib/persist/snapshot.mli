(** Phase-boundary snapshots of the routing state.

    A snapshot captures a {!Router.checkpoint} — the completed phases,
    the deletion counters and every net's live candidate-edge set —
    plus the channel density charts as an integrity cross-check (the
    resume path rebuilds densities from the live sets and refuses to
    continue if they disagree with the recorded charts).

    The file is line-oriented text ending in a [crc XXXXXXXX] trailer
    over everything before it, and is written via temp-file + [fsync] +
    atomic rename ({!write}): a reader observes either the previous
    snapshot or the new one, never a torn mixture.

    Fault-injection sites: [persist.snapshot] (head of {!write}, before
    the temp file exists) and [persist.fsync]. *)

type t = {
  s_phases : string list;  (** completed phases, in execution order *)
  s_deletions : int;
  s_del_hash : int;
  s_live : int list array;  (** per-net live candidate edge ids *)
  s_densities : (int * int) array array;
      (** per-channel [(d_M, d_m)] columns, as recorded at the
          checkpoint — the integrity cross-check *)
}

val of_checkpoint :
  phases:string list -> dens:Density.t -> Router.checkpoint -> t

val of_router : phases:string list -> Router.t -> t
(** Snapshot the router's current state. *)

val to_checkpoint : t -> Router.checkpoint

val to_string : t -> string

val of_string : ?file:string -> string -> (t, Bgr_error.t) result
(** Parse and verify the CRC trailer; any mismatch or malformation is
    a structured [Parse] error. *)

val write : path:string -> t -> unit
(** Atomic replace: write [path ^ ".tmp"], [fsync], rename. *)

val load : path:string -> (t, Bgr_error.t) result
