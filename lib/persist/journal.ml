type record = {
  r_phase : string;
  r_area_mode : bool;
  r_net : int;
  r_edge : int;
  r_deletions_before : int;
  r_hash_before : int;
}

let magic = "BGRJ1\n"
let header_bytes = String.length magic
let payload_len = 26

let phase_code = function
  | "initial_route" -> 0
  | "recover_violations" -> 1
  | "improve_delay" -> 2
  | "improve_area" -> 3
  | "final_recovery" -> 4
  | "final_delay" -> 5
  | _ -> 255

let phase_name = function
  | 0 -> "initial_route"
  | 1 -> "recover_violations"
  | 2 -> "improve_delay"
  | 3 -> "improve_area"
  | 4 -> "final_recovery"
  | 5 -> "final_delay"
  | _ -> "unknown"

let encode_payload r =
  let b = Bytes.create payload_len in
  Bytes.set_uint8 b 0 (phase_code r.r_phase);
  Bytes.set_uint8 b 1 (if r.r_area_mode then 1 else 0);
  Bytes.set_int32_be b 2 (Int32.of_int r.r_net);
  Bytes.set_int32_be b 6 (Int32.of_int r.r_edge);
  Bytes.set_int64_be b 10 (Int64.of_int r.r_deletions_before);
  Bytes.set_int64_be b 18 (Int64.of_int r.r_hash_before);
  Bytes.unsafe_to_string b

let get_u32 s pos = Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

let decode_payload s pos =
  { r_phase = phase_name (Char.code s.[pos]);
    r_area_mode = Char.code s.[pos + 1] <> 0;
    r_net = get_u32 s (pos + 2);
    r_edge = get_u32 s (pos + 6);
    r_deletions_before = Int64.to_int (String.get_int64_be s (pos + 10));
    r_hash_before = Int64.to_int (String.get_int64_be s (pos + 18)) }

let encode_frame r =
  let payload = encode_payload r in
  let b = Buffer.create (payload_len + 8) in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_be b (Int32.of_int (Crc32.string payload));
  Buffer.contents b

(* --- writing --------------------------------------------------------- *)

(* Registered eagerly at module load so the metric catalogue renders
   (zero-valued) even on runs that never open a journal. *)
let m_append =
  Obs.Metrics.histogram "bgr_journal_append_seconds"
    ~help:"Latency of one write-ahead journal append (encode + write + flush)"

let m_fsync =
  Obs.Metrics.histogram "bgr_journal_fsync_seconds"
    ~help:"Latency of one journal fsync (checkpoint durability barrier)"

let timed fam f =
  if Obs.enabled () then begin
    let t0 = Obs.now_s () in
    let r = f () in
    Obs.Metrics.observe fam (Obs.now_s () -. t0);
    r
  end
  else f ()

type writer = { w_oc : out_channel; w_path : string; mutable w_closed : bool }

let io_error path e what =
  Bgr_error.raise_error ~phase:"persist" ~file:path Bgr_error.Io_error "%s: %s" what
    (Unix.error_message e)

let create ~path =
  match open_out_bin path with
  | oc ->
    output_string oc magic;
    flush oc;
    { w_oc = oc; w_path = path; w_closed = false }
  | exception Sys_error msg ->
    Bgr_error.raise_error ~phase:"persist" ~file:path Bgr_error.Io_error "%s" msg

let reopen ~path ~keep_bytes =
  let fd =
    try Unix.openfile path [ Unix.O_WRONLY ] 0o644
    with Unix.Unix_error (e, _, _) -> io_error path e "cannot reopen journal"
  in
  (try
     Unix.ftruncate fd keep_bytes;
     ignore (Unix.lseek fd keep_bytes Unix.SEEK_SET)
   with Unix.Unix_error (e, _, _) ->
     Unix.close fd;
     io_error path e "cannot truncate journal");
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  { w_oc = oc; w_path = path; w_closed = false }

(* Write-ahead: the caller applies the deletion only after this
   returns, so a fault/kill here loses at most the deletion that was
   never applied — which the resumed run re-derives.  The append runs
   on the orchestrating domain only (the router applies deletions
   sequentially); [Persist] asserts this. *)
let append w r =
  Fault.check ~phase:"persist" "persist.append";
  timed m_append (fun () ->
      output_string w.w_oc (encode_frame r);
      flush w.w_oc)

let sync w =
  Fault.check ~phase:"persist" "persist.fsync";
  timed m_fsync (fun () ->
      flush w.w_oc;
      (try Unix.fsync (Unix.descr_of_out_channel w.w_oc) with Unix.Unix_error _ -> ());
      Flight.record Flight.k_journal_sync ~a:0 ~b:0 ~c:0 ~d:(pos_out w.w_oc))

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    try flush w.w_oc; close_out_noerr w.w_oc with Sys_error _ -> ()
  end

(* --- reading --------------------------------------------------------- *)

type read_result = {
  records : (record * int) list;
  valid_bytes : int;
  torn : bool;
  warnings : string list;
}

let read_string ?file s =
  let len = String.length s in
  if len < header_bytes || String.sub s 0 header_bytes <> magic then
    Error (Bgr_error.make ?file ~phase:"persist" Bgr_error.Parse "not a bgr deletion journal")
  else begin
    let records = ref [] and n = ref 0 in
    let result = ref None in
    let finish ~valid_bytes ~torn ~warning =
      result :=
        Some
          (Ok
             { records = List.rev !records;
               valid_bytes;
               torn;
               warnings = (match warning with None -> [] | Some w -> [ w ]) })
    in
    let pos = ref header_bytes in
    while !result = None do
      let p = !pos in
      if p = len then finish ~valid_bytes:p ~torn:false ~warning:None
      else if len - p < 4 then
        finish ~valid_bytes:p ~torn:true
          ~warning:
            (Some
               (Printf.sprintf
                  "journal tail truncated at byte %d (partial length prefix discarded)" p))
      else begin
        let l = get_u32 s p in
        let frame_end = p + 4 + l + 4 in
        if l < 1 || l > 0xFFFF then
          result :=
            Some
              (Error
                 (Bgr_error.make ?file ~phase:"persist" Bgr_error.Parse
                    "journal corrupt at byte %d: implausible record length %d" p l))
        else if frame_end > len then
          finish ~valid_bytes:p ~torn:true
            ~warning:
              (Some (Printf.sprintf "journal tail truncated at byte %d (torn record discarded)" p))
        else begin
          let crc = get_u32 s (p + 4 + l) in
          if Crc32.update 0 s (p + 4) l <> crc then begin
            if frame_end = len then
              finish ~valid_bytes:p ~torn:true
                ~warning:
                  (Some
                     (Printf.sprintf
                        "journal tail truncated at byte %d (bad CRC on the final record)" p))
            else
              result :=
                Some
                  (Error
                     (Bgr_error.make ?file ~phase:"persist" Bgr_error.Parse
                        "journal corrupt at byte %d: CRC mismatch before the final record" p))
          end
          else if l <> payload_len then
            result :=
              Some
                (Error
                   (Bgr_error.make ?file ~phase:"persist" Bgr_error.Parse
                      "journal record %d has unsupported length %d" !n l))
          else begin
            records := (decode_payload s (p + 4), frame_end) :: !records;
            incr n;
            pos := frame_end
          end
        end
      end
    done;
    Option.get !result
  end

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> read_string ~file:path s
  | exception Sys_error msg ->
    Error (Bgr_error.make ~file:path ~phase:"persist" Bgr_error.Io_error "%s" msg)
