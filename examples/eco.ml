(* ECO (engineering change order): tighten a constraint AFTER routing
   and let the violation-recovery phase fix it incrementally — the
   rip-up machinery of Sec. 3.5 doing late-stage duty.

     dune exec examples/eco.exe *)

let () =
  let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
  let input = case.Suite.input in
  let fp0 = Flow.floorplan_of_input input in
  let dg = Delay_graph.build input.Flow.netlist in
  let order = Sta.static_net_order dg input.Flow.constraints in
  let fp, assignment, _ = Feed_insert.assign_with_insertion fp0 ~order in
  (* A scratch timing-driven run tells us what each constraint can
     actually achieve on this layout. *)
  let achievable =
    let sta = Sta.create dg input.Flow.constraints in
    let scratch = Router.create fp assignment (Some sta) in
    ignore (Router.run scratch);
    Array.init (Sta.n_constraints sta) (fun ci -> Sta.critical_delay sta ci)
  in
  let sta = Sta.create dg input.Flow.constraints in
  (* The real pass uses the area-first criterion ordering: the timing is
     legal but sloppy, leaving slack for the ECO to claw back. *)
  let options = { Router.default_options with Router.area_first_ordering = true } in
  let router = Router.create ~options fp assignment (Some sta) in
  Router.initial_route router;
  (* Pick the constraint with the most recoverable slack. *)
  let ci = ref 0 in
  for c = 0 to Sta.n_constraints sta - 1 do
    if
      Sta.critical_delay sta c -. achievable.(c)
      > Sta.critical_delay sta !ci -. achievable.(!ci)
    then ci := c
  done;
  let ci = !ci in
  let pc = Sta.constraint_ sta ci in
  Printf.printf "area-first routing: constraint %s at %.1f ps (timing-driven could do %.1f)\n"
    pc.Path_constraint.cname (Sta.critical_delay sta ci) achievable.(ci);
  (* The designer tightens the limit midway between the sloppy result
     and the demonstrated achievable delay. *)
  let new_limit = (Sta.critical_delay sta ci +. achievable.(ci)) /. 2.0 in
  Sta.set_limit sta ci new_limit;
  Printf.printf "ECO: limit of %s tightened to %.1f ps -> margin now %.1f ps, %d violations\n"
    pc.Path_constraint.cname new_limit (Sta.margin sta ci)
    (List.length (Sta.violations sta));
  (* Incremental fix: only the violation-recovery loop runs; the rest of
     the chip is untouched. *)
  let deletions_before = Router.n_deletions router in
  let r = Router.recover_violations router in
  let r2 = Router.improve_delay router in
  Printf.printf "recovery: %d nets rerouted (+%d improvement reroutes), %d extra deletions\n"
    r.Router.reroutes r2.Router.reroutes
    (Router.n_deletions router - deletions_before);
  Printf.printf "after ECO recovery: margin %.1f ps, %d violations\n" (Sta.margin sta ci)
    (List.length (Sta.violations sta));
  if Sta.margin sta ci >= 0.0 then
    print_endline "the rip-up loops recovered the ECO without touching the rest of the chip."
  else
    print_endline
      "(residual violation: the remaining gap sits in nets the candidate graphs cannot shorten)"
