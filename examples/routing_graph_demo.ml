(* The routing graph G_r(n) of Fig. 3: a net spanning two cell rows,
   with terminal-position choices, an assigned feedthrough, trunks and
   branches — printed before and after edge-deletion routing.

     dune exec examples/routing_graph_demo.exe *)

let () =
  let library = Cell_lib.ecl_default in
  let b = Netlist.builder ~library in
  let drv = Netlist.add_instance b ~name:"drv" ~cell:"BUF2" in
  let s1 = Netlist.add_instance b ~name:"s1" ~cell:"INV1" in
  let s2 = Netlist.add_instance b ~name:"s2" ~cell:"INV1" in
  let sink_drv = Netlist.add_instance b ~name:"sd" ~cell:"OR2" in
  let pin inst term = Netlist.Pin { Netlist.inst; term } in
  let a = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port a) ~sinks:[ pin drv "A" ] () in
  (* The demo net: driver in row 0, sinks in rows 0 and 1. *)
  let net =
    Netlist.add_net b ~name:"demo" ~driver:(pin drv "Z") ~sinks:[ pin s1 "A"; pin s2 "A" ] ()
  in
  let _ = Netlist.add_net b ~name:"n1" ~driver:(pin s1 "Z") ~sinks:[ pin sink_drv "A" ] () in
  let _ = Netlist.add_net b ~name:"n2" ~driver:(pin s2 "Z") ~sinks:[ pin sink_drv "B" ] () in
  let netlist = Netlist.freeze b in
  (* Manual floorplan: drv and s1 in row 0, s2 and sd in row 1, feed
     slots between the cells. *)
  let cells =
    [ { Floorplan.inst = drv; row = 0; x = 0 };
      { Floorplan.inst = s1; row = 0; x = 8 };
      { Floorplan.inst = s2; row = 1; x = 1 };
      { Floorplan.inst = sink_drv; row = 1; x = 8 } ]
  in
  let slots = [ (0, 4, 0); (0, 5, 0); (1, 5, 0); (1, 6, 0) ] in
  let fp =
    Floorplan.make ~netlist ~dims:Dims.default ~n_rows:2 ~width:12 ~cells ~slots ()
  in
  let order = List.init (Netlist.n_nets netlist) Fun.id in
  let assignment, failures = Feedthrough.assign fp ~order in
  assert (failures = []);
  let rg = Routing_graph.build fp assignment ~net in
  Format.printf "Candidate routing graph (cf. Fig. 3):@.%a@." (Routing_graph.pp fp) rg;

  (* Route just this floorplan and show the surviving tree. *)
  let router = Router.create fp assignment None in
  Router.initial_route router;
  assert (Router.is_routed router);
  let rg = Router.routing_graph router net in
  Format.printf "After edge deletion (the interconnection tree):@.%a@." (Routing_graph.pp fp) rg;
  Printf.printf "tree wire length: %.1f um\n" (Router.net_length_um router net)
