(* The capacitance delay model of Eq. 1 (the paper's Fig. 1), worked by
   hand and checked against the library's delay graph.

     T_pd = T0(ti,to) + (sum F_in over fanout) * Tf(to) + CL(n) * Td(to)

   dune exec examples/delay_model.exe *)

let () =
  let library = Cell_lib.ecl_default in
  let b = Netlist.builder ~library in
  let a = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let y = Netlist.add_port b ~name:"Y" ~side:Netlist.North () in
  let inv = Netlist.add_instance b ~name:"i" ~cell:"INV1" in
  let or3 = Netlist.add_instance b ~name:"o" ~cell:"OR3" in
  let pin inst term = Netlist.Pin { Netlist.inst; term } in
  (* net n1 drives three loads: all inputs of the OR3. *)
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port a) ~sinks:[ pin inv "A" ] () in
  let n1 =
    Netlist.add_net b ~name:"n1" ~driver:(pin inv "Z")
      ~sinks:[ pin or3 "A"; pin or3 "B"; pin or3 "C" ]
      ()
  in
  let _ = Netlist.add_net b ~name:"n2" ~driver:(pin or3 "Z") ~sinks:[ Netlist.Port y ] () in
  let netlist = Netlist.freeze b in

  let inv_cell = Cell_lib.find library "INV1" in
  let or3_cell = Cell_lib.find library "OR3" in
  let z = Cell.terminal inv_cell "Z" in
  let fanin name = (Cell.terminal or3_cell name).Cell.fanin_ff in
  let t0 =
    match Cell.arcs_to or3_cell ~output:"Z" with
    | arc :: _ -> arc.Cell.intrinsic_ps
    | [] -> assert false
  in
  let cl = 42.0 (* fF, pretend wiring capacitance of n1 *) in
  Printf.printf "Eq. 1 by hand for the stage through OR3 input A:\n";
  Printf.printf "  T0(A,Z)            = %.1f ps\n" t0;
  let fanin_sum = fanin "A" +. fanin "B" +. fanin "C" in
  Printf.printf "  sum F_in           = %.1f fF (inputs A,B,C of OR3)\n" fanin_sum;
  Printf.printf "  Tf(Z of INV1)      = %.1f ps/fF\n" z.Cell.tf_ps_per_ff;
  Printf.printf "  Td(Z of INV1)      = %.1f ps/fF,  CL(n1) = %.1f fF\n" z.Cell.td_ps_per_ff cl;
  let by_hand = t0 +. (fanin_sum *. z.Cell.tf_ps_per_ff) +. (cl *. z.Cell.td_ps_per_ff) in
  Printf.printf "  T_pd               = %.1f ps\n\n" by_hand;

  (* The same number out of the delay graph. *)
  let dg = Delay_graph.build netlist in
  Delay_graph.set_net_cap dg ~net:n1 ~cap_ff:cl;
  let dag = Delay_graph.dag dg in
  let weights =
    List.map (fun e -> Dag.weight dag e) (Delay_graph.edges_of_net dg n1)
  in
  Printf.printf "delay-graph edge weights for net n1 (one per OR3 arc):\n";
  List.iter (Printf.printf "  %.1f ps\n") weights;
  let matches = List.exists (fun w -> abs_float (w -. by_hand) < 1e-9) weights in
  Printf.printf "hand computation %s the A->Z edge.\n" (if matches then "matches" else "DOES NOT match");

  (* Critical path through the whole two-stage circuit. *)
  let nodes v = Delay_graph.node dg v in
  let pc =
    Path_constraint.make ~name:"A->Y"
      ~sources:(List.map nodes (Delay_graph.natural_sources dg))
      ~sinks:(List.map nodes (Delay_graph.natural_sinks dg))
      ~limit_ps:1000.0
  in
  let sta = Sta.create dg [ pc ] in
  Printf.printf "\nfull-path critical delay (CL(n1)=%.0f fF, others 0): %.1f ps, margin %.1f ps\n" cl
    (Sta.critical_delay sta 0) (Sta.margin sta 0);
  Printf.printf "critical path:";
  List.iter
    (fun v -> Format.printf " %a" (Delay_graph.pp_node dg) (Delay_graph.node dg v))
    (Sta.critical_path sta 0);
  print_newline ()
