(* Differential-drive pairs (Sec. 4.1): the two nets of a pair get
   homologous routing graphs, mirrored edge deletions, and end up as
   physically parallel trees.

     dune exec examples/differential_pairs.exe *)

let () =
  let library = Cell_lib.ecl_default in
  let b = Netlist.builder ~library in
  let a = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let drv = Netlist.add_instance b ~name:"drv" ~cell:"DDRV" in
  let r1 = Netlist.add_instance b ~name:"r1" ~cell:"OR2" in
  let r2 = Netlist.add_instance b ~name:"r2" ~cell:"OR2" in
  let sink = Netlist.add_instance b ~name:"snk" ~cell:"OR2" in
  let pin inst term = Netlist.Pin { Netlist.inst; term } in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port a) ~sinks:[ pin drv "A" ] () in
  let z = Netlist.add_net b ~name:"z" ~driver:(pin drv "Z") ~sinks:[ pin r1 "A"; pin r2 "A" ] () in
  let zn = Netlist.add_net b ~name:"zn" ~driver:(pin drv "ZN") ~sinks:[ pin r1 "B"; pin r2 "B" ] () in
  Netlist.pair_differential b z zn;
  let _ = Netlist.add_net b ~name:"n1" ~driver:(pin r1 "Z") ~sinks:[ pin sink "A" ] () in
  let _ = Netlist.add_net b ~name:"n2" ~driver:(pin r2 "Z") ~sinks:[ pin sink "B" ] () in
  let netlist = Netlist.freeze b in
  (* Receivers two rows above the driver, so the pair must cross row 1
     through a shared feedthrough group. *)
  let cells =
    [ { Floorplan.inst = drv; row = 0; x = 0 };
      { Floorplan.inst = r1; row = 2; x = 0 };
      { Floorplan.inst = r2; row = 2; x = 10 };
      { Floorplan.inst = sink; row = 0; x = 10 } ]
  in
  (* Adjacent feedthrough slots: the pair is treated as a 2-pitch
     demand and occupies two neighbouring columns. *)
  let slots =
    [ (0, 5, 0); (0, 6, 0); (1, 5, 0); (1, 6, 0); (2, 5, 0); (2, 6, 0); (1, 8, 0); (1, 3, 0) ]
  in
  let fp = Floorplan.make ~netlist ~dims:Dims.default ~n_rows:3 ~width:14 ~cells ~slots () in
  let order = List.init (Netlist.n_nets netlist) Fun.id in
  let assignment, failures = Feedthrough.assign fp ~order in
  assert (failures = []);
  Printf.printf "feedthroughs granted to the pair:\n";
  List.iter
    (fun (row, granted) ->
      List.iter
        (fun (s : Floorplan.slot) -> Printf.printf "  net z : row %d column %d\n" row s.Floorplan.slot_x)
        granted)
    (Feedthrough.slots_of_net assignment z);
  List.iter
    (fun (row, granted) ->
      List.iter
        (fun (s : Floorplan.slot) -> Printf.printf "  net zn: row %d column %d\n" row s.Floorplan.slot_x)
        granted)
    (Feedthrough.slots_of_net assignment zn);
  let router = Router.create fp assignment None in
  Printf.printf "\nrecognized homologous pairs: %d\n" (Router.n_recognized_pairs router);
  Router.initial_route router;
  assert (Router.is_routed router);
  let show name net =
    let rg = Router.routing_graph router net in
    Printf.printf "%s tree (%0.1f um):\n" name (Router.net_length_um router net);
    List.iter
      (fun eid ->
        match Routing_graph.edge_kind rg eid with
        | Routing_graph.Trunk { channel; span } ->
          Printf.printf "  trunk  channel %d, columns %d..%d\n" channel (Interval.lo span)
            (Interval.hi span)
        | Routing_graph.Branch { row; x } -> Printf.printf "  branch row %d, x=%d\n" row x
        | Routing_graph.Correspondence _ -> ())
      (Router.tree_edges router net)
  in
  show "z " z;
  show "zn" zn;
  Printf.printf "\nthe two trees use the same channels at adjacent columns: mirrored\n";
  Printf.printf "deletions kept them physically parallel, preserving the noise margin.\n"
