(* Feed-cell insertion (Sec. 4.3): bipolar standard cells cannot be
   crossed, so when feedthrough positions run out, the router widens
   the chip by inserting feed cells — evenly spaced, width-flagged for
   multi-pitch nets — and re-assigns.

     dune exec examples/feed_cells.exe *)

let () =
  (* A circuit whose clock (2-pitch) and data nets need more vertical
     crossings than the designer left room for: place the MINI suite
     circuit with an aggressive 0.97 utilization so rows have almost no
     spare columns. *)
  let case = Suite.mini () in
  let netlist = case.Suite.input.Flow.netlist in
  let constraints = case.Suite.input.Flow.constraints in
  let placed = Placement.place ~utilization:0.97 ~netlist ~n_rows:4 Placement.P1 in
  let input = Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints placed in
  let fp0 = Flow.floorplan_of_input input in
  Printf.printf "before insertion: chip width %d pitches, %d feedthrough slots\n"
    (Floorplan.width fp0) (Floorplan.n_slots fp0);
  let order = List.init (Netlist.n_nets netlist) Fun.id in
  let _, failures = Feedthrough.assign fp0 ~order in
  Printf.printf "first assignment: %d unmet feedthrough demands, e.g.:\n" (List.length failures);
  List.iteri
    (fun i f -> if i < 5 then Format.printf "  %a@." Feedthrough.pp_failure f)
    failures;
  let fp, assignment, rounds = Feed_insert.assign_with_insertion fp0 ~order in
  Printf.printf "\nafter %d insertion round(s): chip width %d pitches, %d slots\n" rounds
    (Floorplan.width fp) (Floorplan.n_slots fp);
  let flagged =
    Array.to_list (Floorplan.slots fp)
    |> List.filter (fun (s : Floorplan.slot) -> s.Floorplan.width_flag > 0)
  in
  Printf.printf "width-flagged slots inserted for multi-pitch nets: %d\n" (List.length flagged);
  assert (Feedthrough.is_complete assignment);
  Printf.printf "second assignment complete, as Sec. 4.3 guarantees.\n";
  (* The widened chip still routes end to end. *)
  let input = { input with Flow.width = Floorplan.width fp } in
  ignore input;
  let router = Router.create fp assignment None in
  ignore (Router.run router);
  Printf.printf "routed: %b\n" (Router.is_routed router)
