(* Design-file round trip: write a complete routing job (netlist +
   placement + constraints) as one text bundle, read it back, route it.

     dune exec examples/design_files.exe *)

let () =
  let case = Suite.mini () in
  let input = case.Suite.input in
  let fp = Flow.floorplan_of_input input in
  let path = Filename.temp_file "bgr_demo" ".bgr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Design_io.write ~floorplan:fp ~constraints:input.Flow.constraints input.Flow.netlist ~path;
      Printf.printf "wrote %s\n\nfirst lines of the bundle:\n" path;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          for _ = 1 to 12 do
            match input_line ic with
            | line -> print_endline ("  " ^ line)
            | exception End_of_file -> ()
          done);
      let bundle = Design_io.read path in
      Printf.printf "\nread back: %d instances, %d nets, %d constraints, placement %s\n"
        (Netlist.n_instances bundle.Design_io.d_netlist)
        (Netlist.n_nets bundle.Design_io.d_netlist)
        (List.length bundle.Design_io.d_constraints)
        (match bundle.Design_io.d_floorplan with Some _ -> "present" | None -> "absent");
      let outcome = Flow.run (Design_io.to_flow_input bundle) in
      let m = outcome.Flow.o_measurement in
      Printf.printf "routed from the bundle: delay %.1f ps, area %.3f mm2, %d violations\n"
        m.Flow.m_delay_ps m.Flow.m_area_mm2 m.Flow.m_violations)
