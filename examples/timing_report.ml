(* STA-style timing reporting after routing: per-endpoint worst paths,
   vertex slacks, and the slack distribution.

     dune exec examples/timing_report.exe *)

let () =
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  match outcome.Flow.o_sta with
  | None -> print_endline "no constraints"
  | Some sta ->
    let dg = Sta.delay_graph sta in
    let name v = Format.asprintf "%a" (Delay_graph.pp_node dg) (Delay_graph.node dg v) in
    (* The single worst endpoint across all constraints. *)
    let worst_ci, _ = Option.get (Sta.worst sta) in
    let pc = Sta.constraint_ sta worst_ci in
    Printf.printf "tightest constraint: %s (limit %.1f ps, margin %.1f ps)\n"
      pc.Path_constraint.cname pc.Path_constraint.limit_ps (Sta.margin sta worst_ci);
    (match Sta.endpoint_reports sta worst_ci with
    | r :: _ ->
      Printf.printf "worst endpoint %s: delay %.1f ps, slack %.1f ps\n" (name r.Sta.ep_vertex)
        r.Sta.ep_delay_ps r.Sta.ep_slack_ps;
      Printf.printf "  stage-by-stage arrival along its path:\n";
      let arrival = Sta.arrival sta worst_ci in
      List.iter
        (fun v -> Printf.printf "    %-24s %8.1f ps\n" (name v) arrival.(v))
        r.Sta.ep_path
    | [] -> ());
    (* Slack uniformity along the critical path (a classic STA
       invariant: every vertex on it carries the worst slack). *)
    let slack = Sta.vertex_slack sta worst_ci in
    let spread =
      List.fold_left
        (fun (lo, hi) v -> (min lo slack.(v), max hi slack.(v)))
        (infinity, neg_infinity)
        (Sta.critical_path sta worst_ci)
    in
    Printf.printf "critical-path slack spread: %.3f ps (uniform = healthy)\n"
      (snd spread -. fst spread);
    print_newline ();
    print_string (Slack_profile.render (Slack_profile.of_sta sta))
