(* Quickstart: build a small circuit through the public API, place it,
   route it with and without timing constraints, and compare.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A netlist: two OR gates between an input port, a flip-flop and
     an output port, using the built-in ECL library. *)
  let library = Cell_lib.ecl_default in
  let b = Netlist.builder ~library in
  let in_a = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let in_b = Netlist.add_port b ~name:"B" ~side:Netlist.South () in
  let clk = Netlist.add_port b ~name:"CLK" ~side:Netlist.South () in
  let out_y = Netlist.add_port b ~name:"Y" ~side:Netlist.North () in
  let g1 = Netlist.add_instance b ~name:"g1" ~cell:"OR2" in
  let g2 = Netlist.add_instance b ~name:"g2" ~cell:"OR2" in
  let ff = Netlist.add_instance b ~name:"ff" ~cell:"DFF" in
  let pin inst term = Netlist.Pin { Netlist.inst; term } in
  let _ = Netlist.add_net b ~name:"na" ~driver:(Netlist.Port in_a) ~sinks:[ pin g1 "A" ] () in
  let _ = Netlist.add_net b ~name:"nb" ~driver:(Netlist.Port in_b) ~sinks:[ pin g1 "B" ] () in
  let _ = Netlist.add_net b ~name:"n1" ~driver:(pin g1 "Z") ~sinks:[ pin g2 "A"; pin g2 "B" ] () in
  let _ = Netlist.add_net b ~name:"n2" ~driver:(pin g2 "Z") ~sinks:[ pin ff "D" ] () in
  let _ = Netlist.add_net b ~name:"nq" ~driver:(pin ff "Q") ~sinks:[ Netlist.Port out_y ] () in
  let _ = Netlist.add_net b ~name:"nc" ~driver:(Netlist.Port clk) ~sinks:[ pin ff "CK" ] () in
  let netlist = Netlist.freeze b in
  Printf.printf "netlist: %d instances, %d nets, %d ports\n" (Netlist.n_instances netlist)
    (Netlist.n_nets netlist) (Netlist.n_ports netlist);

  (* 2. A path constraint: input ports to the flip-flop data input. *)
  let dg = Delay_graph.build netlist in
  let node v = Delay_graph.node dg v in
  let constraints =
    [ Path_constraint.make ~name:"in->ff"
        ~sources:(List.map node (Delay_graph.natural_sources dg))
        ~sinks:[ Delay_graph.Seq_in { Netlist.inst = ff; term = "D" } ]
        ~limit_ps:700.0 ]
  in

  (* 3. A two-row placement with feed slots in the gaps. *)
  let placed = Placement.place ~netlist ~n_rows:2 Placement.P1 in
  let input = Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints placed in

  (* 4. Route end-to-end (feedthrough assignment, global routing,
     channel routing, measurement) and compare both modes. *)
  let show tag (m : Flow.measurement) =
    Printf.printf "%-14s delay %6.1f ps  margin %7.1f ps  area %.4f mm2  wiring %.2f mm\n" tag
      m.Flow.m_delay_ps m.Flow.m_margin_ps m.Flow.m_area_mm2 m.Flow.m_length_mm
  in
  let con = Flow.run ~timing_driven:true input in
  show "constrained" con.Flow.o_measurement;
  let unc = Flow.run ~timing_driven:false input in
  show "unconstrained" unc.Flow.o_measurement;

  (* 5. Inspect one routed net. *)
  let router = con.Flow.o_router in
  let net1 = 2 (* n1: g1.Z -> g2.A/B *) in
  Printf.printf "\nnet n1 tree (%0.1f um of wire):\n" (Router.net_length_um router net1);
  let rg = Router.routing_graph router net1 in
  List.iter
    (fun eid ->
      match Routing_graph.edge_kind rg eid with
      | Routing_graph.Trunk { channel; span } ->
        Printf.printf "  trunk in channel %d columns %d..%d\n" channel (Interval.lo span)
          (Interval.hi span)
      | Routing_graph.Branch { row; x } -> Printf.printf "  feedthrough through row %d at x=%d\n" row x
      | Routing_graph.Correspondence p ->
        Printf.printf "  pin connection at channel %d x=%d\n" p.Routing_graph.channel
          p.Routing_graph.x)
    (Router.tree_edges router net1)
