(* Fig. 4: the d_M / d_m channel density charts and the eight density
   parameters, shown while the edge-deletion router is working.

     dune exec examples/density_chart.exe *)

let () =
  let case = Suite.mini () in
  let input = case.Suite.input in
  let fp0 = Flow.floorplan_of_input input in
  let dg = Delay_graph.build input.Flow.netlist in
  let order = Sta.static_net_order dg input.Flow.constraints in
  let fp, assignment, _ = Feed_insert.assign_with_insertion fp0 ~order in
  let sta = Sta.create dg input.Flow.constraints in
  let router = Router.create fp assignment (Some sta) in
  let dens = Router.density router in
  let channel =
    let best = ref 0 and best_v = ref (-1) in
    for c = 0 to Density.n_channels dens - 1 do
      if Density.cM dens ~channel:c > !best_v then begin
        best_v := Density.cM dens ~channel:c;
        best := c
      end
    done;
    !best
  in
  Printf.printf "Redundant candidate graphs (before any deletion):\n";
  print_string (Experiments.fig4_of_density dens ~channel);
  Printf.printf "\n  d_M counts every live trunk, d_m only bridges; C_m is a floor the\n";
  Printf.printf "  router must never raise carelessly, C_M the ceiling it wants down.\n\n";
  ignore (Router.run router);
  Printf.printf "After routing (trees only, so every trunk is a bridge):\n";
  print_string (Experiments.fig4_of_density dens ~channel);
  Printf.printf "\nper-channel track estimates:";
  Array.iter (Printf.printf " %d") (Density.tracks_estimate dens);
  print_newline ()
