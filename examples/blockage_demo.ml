(* Routing blockages: a pre-routed obstruction in a channel forces the
   router to take the other side of the cell row.

     dune exec examples/blockage_demo.exe *)

let build ~blockages =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p = Netlist.add_port b ~name:"IN" ~side:Netlist.South ~column_hint:1 () in
  let q = Netlist.add_port b ~name:"OUT" ~side:Netlist.North ~column_hint:12 () in
  let d = Netlist.add_instance b ~name:"drv" ~cell:"BUF2" in
  let s = Netlist.add_instance b ~name:"snk" ~cell:"INV1" in
  let pin inst term = Netlist.Pin { Netlist.inst; term } in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p) ~sinks:[ pin d "A" ] () in
  let demo = Netlist.add_net b ~name:"demo" ~driver:(pin d "Z") ~sinks:[ pin s "A" ] () in
  let _ = Netlist.add_net b ~name:"n1" ~driver:(pin s "Z") ~sinks:[ Netlist.Port q ] () in
  let netlist = Netlist.freeze b in
  let cells =
    [ { Floorplan.inst = d; row = 0; x = 0 }; { Floorplan.inst = s; row = 0; x = 10 } ]
  in
  let fp =
    Floorplan.make ~netlist ~dims:Dims.default ~n_rows:1 ~width:14 ~cells ~slots:[] ~blockages ()
  in
  let assignment, failures = Feedthrough.assign fp ~order:(List.init 3 Fun.id) in
  assert (failures = []);
  (fp, assignment, demo)

let route_and_show ~blockages label =
  let fp, assignment, demo = build ~blockages in
  Printf.printf "%s\n%s" label (Layout_view.floorplan fp);
  let router = Router.create fp assignment None in
  Router.initial_route router;
  let rg = Router.routing_graph router demo in
  List.iter
    (fun eid ->
      match Routing_graph.edge_kind rg eid with
      | Routing_graph.Trunk { channel; span } ->
        Printf.printf "  demo net trunk: channel %d, columns %d..%d\n" channel (Interval.lo span)
          (Interval.hi span)
      | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ())
    (Router.tree_edges router demo);
  print_newline ()

let () =
  route_and_show ~blockages:[] "No blockage: the net picks either channel.";
  route_and_show
    ~blockages:[ (1, 3, 8) ]
    "Channel 1 blocked over columns 3..8 ('X'): the net must use channel 0.";
  route_and_show
    ~blockages:[ (0, 3, 8) ]
    "Channel 0 blocked instead: the net flips to channel 1."
