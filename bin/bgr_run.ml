(* Command-line driver for the global router reproduction.

     bgr_run tables              reproduce Tables 1-3
     bgr_run route C1P1          route one case and report
     bgr_run density C1P1        Fig.-4 density charts
     bgr_run ablation a1|a3      design-choice ablations
     bgr_run stats C1            circuit statistics *)

open Cmdliner

let case_conv =
  let parse s =
    let s = String.uppercase_ascii s in
    let make circuit placement = Ok (Suite.make_case ~circuit ~placement) in
    match s with
    | "C1P1" -> make "C1" Placement.P1
    | "C1P2" -> make "C1" Placement.P2
    | "C2P1" -> make "C2" Placement.P1
    | "C2P2" -> make "C2" Placement.P2
    | "C3P1" -> make "C3" Placement.P1
    | "C3P2" -> make "C3" Placement.P2
    | "MINI" -> Ok (Suite.mini ())
    | _ -> Error (`Msg (Printf.sprintf "unknown case %s (C1P1..C3P2, MINI)" s))
  in
  let print ppf (case : Suite.case) = Format.fprintf ppf "%s" case.Suite.case_name in
  Arg.conv (parse, print)

let case_arg =
  Arg.(required & pos 0 (some case_conv) None & info [] ~docv:"CASE" ~doc:"Benchmark case, e.g. C1P1.")

let no_constraints =
  Arg.(value & flag & info [ "no-constraints"; "u" ] ~doc:"Route without timing constraints (area only).")

let trace_flag = Arg.(value & flag & info [ "trace" ] ~doc:"Print the router's phase trace.")

let domains_arg =
  Arg.(
    value
    & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel routing engine: 0 (default) resolves to the \
           BGR_DOMAINS environment variable or all available cores, 1 forces the sequential \
           engine.  The routing result is identical for every value.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget for the router's improvement phases, in milliseconds.  The initial \
           routing always completes, so the output is a full (verifiable) routing either way; \
           when the budget runs out the remaining improvement phases are skipped and the report \
           says where the router stopped.")

let budget_of_deadline = function
  | None -> Budget.unlimited
  | Some ms -> Budget.make ~wall_ms:(float_of_int ms) ()

(* --- observability flags (route-file / resume / signoff) -------------- *)

type obs_opts = {
  ob_trace : string option;
  ob_jsonl : string option;
  ob_metrics : string option;
  ob_summary : bool;
  ob_flight : string option;
  ob_no_flight : bool;
}

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.json"
          ~doc:
            "Record the run's spans and write them as a Chrome trace_event file; open it at \
             ui.perfetto.dev or chrome://tracing.  See docs/observability.md for the span \
             taxonomy.")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE.jsonl"
          ~doc:"Also stream completed spans as one JSON object per line (grep/jq-friendly).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE.prom"
          ~doc:
            "After the run, dump the metrics registry (deletion counters by phase and \
             criterion, phase durations, density peaks, journal latencies, domain busy time) \
             in Prometheus text-exposition format.")
  in
  let summary =
    Arg.(
      value
      & flag
      & info [ "obs-summary" ]
          ~doc:"Print per-phase durations and the slowest trace spans after the run.")
  in
  let flight =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "flight" ] ~docv:"FILE.bgrf"
          ~doc:
            "Where to dump the black-box flight recorder on an abnormal exit (error, deadline \
             stop, SIGQUIT).  With no value it lands next to the journal ($(b,--persist) \
             DIR/flight.bgrf) or at ./flight.bgrf; without this flag, $(b,--persist) runs \
             still dump into their run directory.  Read it with $(b,bgr_analyze postmortem).")
  in
  let no_flight =
    Arg.(
      value & flag
      & info [ "no-flight" ]
          ~doc:
            "Disable the flight recorder entirely (it is on by default and costs a few \
             nanoseconds per recorded event; this switch exists for overhead measurements).")
  in
  Term.(
    const (fun t j m s f nf ->
        { ob_trace = t; ob_jsonl = j; ob_metrics = m; ob_summary = s; ob_flight = f;
          ob_no_flight = nf })
    $ trace $ jsonl $ metrics $ summary $ flight $ no_flight)

let obs_active o =
  o.ob_trace <> None || o.ob_jsonl <> None || o.ob_metrics <> None || o.ob_summary

let obs_setup o =
  if obs_active o then begin
    Obs.enable ();
    Option.iter Obs.Trace.to_chrome_file o.ob_trace;
    Option.iter Obs.Trace.to_jsonl_file o.ob_jsonl
  end

(* Observability must never fail the run: an unwritable metrics path
   degrades to a warning, exactly like a failed trace sink.  The write
   is atomic and durable (temp + fsync + rename), so a scrape target
   pointed at the file can never observe it torn or zero-length. *)
let obs_finish o =
  if obs_active o then begin
    Obs.Trace.close_sinks ();
    (match o.ob_metrics with
    | None -> ()
    | Some path -> (
      try Obs.write_file_atomic path (Obs.Metrics.render_prometheus ())
      with Sys_error msg -> Obs.warn "cannot write metrics file %s: %s" path msg));
    if o.ob_summary then begin
      Table.print (Obs_report.phase_durations ());
      Table.print (Obs_report.slowest_spans ~n:12 ())
    end;
    List.iter (fun w -> Printf.eprintf "warning: obs: %s\n%!" w) (Obs.warnings ())
  end

(* --- quality recording (route-file / resume) -------------------------- *)

let quality_arg =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "quality-log" ] ~docv:"FILE.bgrq"
        ~doc:
          "Record solution-quality telemetry (margins, violations, channel densities, \
           deletion-criterion mix) into a CRC-framed .bgrq event log; explore it offline with \
           $(b,bgr_analyze).  Recording never changes the routing result.  With no value the \
           log is written next to the journal ($(b,--persist) DIR/quality.bgrq) or to \
           ./quality.bgrq.")

let quality_path ~persist = function
  | None -> None
  | Some "" ->
    Some
      (match persist with
      | Some dir -> Filename.concat dir Qlog.default_filename
      | None -> Qlog.default_filename)
  | Some p -> Some p

(* --- black-box flight recorder (route-file / resume) ------------------ *)

(* Where an abnormal exit dumps the flight record: an explicit
   --flight path wins; otherwise --persist runs dump into their run
   directory (a crash there is exactly what the postmortem pipeline
   exists for), and plain runs only dump when asked. *)
let flight_path ~persist o =
  if o.ob_no_flight then None
  else
    match o.ob_flight with
    | Some "" ->
      Some
        (match persist with
        | Some dir -> Filename.concat dir Flight.default_filename
        | None -> Flight.default_filename)
    | Some p -> Some p
    | None -> Option.map (fun dir -> Filename.concat dir Flight.default_filename) persist

(* Arm the recorder for one command: honour --no-flight and make
   SIGQUIT dump to the resolved path on demand. *)
let flight_setup ~persist o =
  if o.ob_no_flight then Flight.set_enabled false;
  let path = flight_path ~persist o in
  (match path with
  | Some p -> Flight.install_sigquit_dump ~path:(fun () -> p) ()
  | None -> ());
  path

(* The Bgr_error escalation path: record the failure, dump, and tell
   the operator where the black box landed. *)
let flight_on_error path (e : Bgr_error.t) =
  Flight.record Flight.k_error ~a:(Bgr_error.exit_code e.Bgr_error.code) ~b:0 ~c:0 ~d:0;
  match path with
  | None -> ()
  | Some p ->
    if Flight.dump_file ~reason:("error:" ^ Bgr_error.code_name e.Bgr_error.code) p then
      Printf.eprintf "flight record: %s (read it with bgr_analyze postmortem)\n%!" p

(* A deadline (or injected-fault) stop is an abnormal exit too, even
   though the run still reports a verifiable routing. *)
let flight_on_outcome path (m : Flow.measurement) =
  if m.Flow.m_stopped_because <> "finished" then
    match path with
    | None -> ()
    | Some p ->
      if Flight.dump_file ~trigger:4 ~reason:("stop:" ^ m.Flow.m_stopped_because) p then
        Printf.printf "flight record: %s (%s)\n" p m.Flow.m_stopped_because

(* The CLI-side quality sink: a [Qlog] writer wrapped so that any I/O
   failure degrades to a stderr warning and stops recording — telemetry
   must never fail (or alter) the run. *)
let quality_sink = function
  | None -> (None, fun () -> ())
  | Some path -> (
    (* the log may live inside a --persist run directory that the
       routing entry point has not created yet *)
    (try
       let d = Filename.dirname path in
       if not (Sys.file_exists d) then Unix.mkdir d 0o755
     with Unix.Unix_error _ -> ());
    match Qlog.create ~path with
    | exception Bgr_error.Error e ->
      Printf.eprintf "warning: quality: %s\n%!" e.Bgr_error.message;
      (None, fun () -> ())
    | w ->
      let dead = ref false in
      let emit s =
        if not !dead then
          try ignore (Qlog.append w s)
          with e ->
            dead := true;
            Qlog.close w;
            Printf.eprintf "warning: quality: recording stopped: %s\n%!"
              (match e with
              | Bgr_error.Error err -> err.Bgr_error.message
              | e -> Printexc.to_string e)
      in
      ( Some emit,
        fun () ->
          if not !dead then begin
            Qlog.close w;
            Printf.printf "quality log: %s (%d samples)\n" path (Qlog.appended w)
          end ))

let report_measurement name (m : Flow.measurement) =
  let t = Table.create ~title:(Printf.sprintf "Routing result: %s" name) ~columns:[ "metric"; "value" ] in
  let add k v = Table.add_row t [ k; v ] in
  add "critical-path delay (ps)" (Table.f1 m.Flow.m_delay_ps);
  add "lower bound (ps)" (Table.f1 m.Flow.m_lower_bound_ps);
  add "gap over bound"
    (Table.pct (Lower_bound.gap_percent ~delay_ps:m.Flow.m_delay_ps ~bound_ps:m.Flow.m_lower_bound_ps));
  add "worst margin (ps)" (Table.f1 m.Flow.m_margin_ps);
  add "violated constraints" (Table.fint m.Flow.m_violations);
  add "chip area (mm2)" (Table.f3 m.Flow.m_area_mm2);
  add "total wiring (mm)" (Table.f1 m.Flow.m_length_mm);
  add "chip width (pitches)" (Table.fint m.Flow.m_chip_width);
  add "feed-cell insertion rounds" (Table.fint m.Flow.m_insert_rounds);
  add "edge deletions" (Table.fint m.Flow.m_deletions);
  add "recognized differential pairs" (Table.fint m.Flow.m_recognized_pairs);
  add "channel doglegs" (Table.fint m.Flow.m_channel_doglegs);
  add "channel constraint breaks" (Table.fint m.Flow.m_channel_violations);
  add "CPU (s)" (Table.f2 m.Flow.m_cpu_s);
  add "router stopped because" m.Flow.m_stopped_because;
  add "worker domains" (Table.fint m.Flow.m_domains);
  add "deletion hash" (string_of_int m.Flow.m_deletion_hash);
  Table.print t;
  List.iter
    (fun w -> Printf.printf "warning: degraded scoring pool: %s\n" w)
    m.Flow.m_par_warnings

(* Shared by route-file --audit and resume: print the audit and fail
   loudly (exit 10) when invariants are broken. *)
let run_audit ?(repair = false) router =
  let a = Verify.audit ~repair ~measured_caps:true router in
  Format.printf "%a@?" Verify.pp_audit a;
  if not (Verify.audit_ok a) then exit (Bgr_error.exit_code Bgr_error.Internal)

let tables_cmd =
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated values.") in
  let run csv domains =
    let emit t = if csv then print_string (Table.to_csv t) else Table.print t in
    let cases = Suite.all () in
    emit (Experiments.table1 cases);
    let runs = Experiments.run_suite ~cases ~domains () in
    let w, wo = Experiments.table2 runs in
    emit w;
    emit wo;
    emit (Experiments.table3 runs)
  in
  Cmd.v (Cmd.info "tables" ~doc:"Reproduce Tables 1-3 on the synthetic suite.")
    Term.(const run $ csv $ domains_arg)

let route_cmd =
  let run case unconstrained with_trace domains deadline =
    let options =
      { Router.default_options with
        Router.trace = (if with_trace then Some print_endline else None);
        domains }
    in
    let outcome =
      Flow.run ~options ~timing_driven:(not unconstrained)
        ~budget:(budget_of_deadline deadline) case.Suite.input
    in
    report_measurement
      (case.Suite.case_name ^ if unconstrained then " (unconstrained)" else " (constrained)")
      outcome.Flow.o_measurement
  in
  Cmd.v (Cmd.info "route" ~doc:"Route one case end to end and report all metrics.")
    Term.(const run $ case_arg $ no_constraints $ trace_flag $ domains_arg $ deadline_arg)

let density_cmd =
  let run case =
    let outcome = Flow.run case.Suite.input in
    let channel = Experiments.fig4_worst_channel outcome in
    print_string (Experiments.fig4 outcome ~channel)
  in
  Cmd.v (Cmd.info "density" ~doc:"Print the Fig.-4 density chart of the most congested channel.")
    Term.(const run $ case_arg)

let ablation_cmd =
  let which =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("a1", `A1);
                  ("a3", `A3);
                  ("a4", `A4);
                  ("a5", `A5);
                  ("a6", `A6);
                  ("a7", `A7);
                  ("a8", `A8) ]))
          None
      & info [] ~docv:"WHICH")
  in
  let run which =
    let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
    match which with
    | `A1 -> Table.print (Experiments.ablation_a1 case)
    | `A3 -> Table.print (Experiments.ablation_a3 case)
    | `A4 -> Table.print (Experiments.ablation_a4 case)
    | `A5 -> Table.print (Experiments.ablation_a5 case)
    | `A6 -> Table.print (Experiments.ablation_a6 case)
    | `A7 -> Table.print (Experiments.ablation_a7 ())
    | `A8 -> Table.print (Experiments.ablation_a8 case)
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:
         "Run a design-choice ablation (a1: ordering, a3: CL estimator, a4: delay model, a5: \
          routing scheme, a6: channel router, a7: clock pitch vs skew, a8: pin-side bias).")
    Term.(const run $ which)

let export_cmd =
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Output bundle path.")
  in
  let run case path =
    let input = case.Suite.input in
    let fp = Flow.floorplan_of_input input in
    Design_io.write ~floorplan:fp ~constraints:input.Flow.constraints input.Flow.netlist ~path;
    Printf.printf "wrote %s (netlist + placement + constraints)\n" path
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a benchmark case as a single-file design bundle.")
    Term.(const run $ case_arg $ path_arg)

let route_file_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Design bundle path.")
  in
  let persist_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "persist" ] ~docv:"DIR"
          ~doc:
            "Run crash-safe: store the design and a write-ahead deletion journal in $(docv), \
             snapshotting at every phase boundary.  A killed run is continued with \
             $(b,bgr_run resume) $(docv).")
  in
  let audit_flag =
    Arg.(
      value
      & flag
      & info [ "audit" ]
          ~doc:
            "After routing, sweep the full state-invariant audit (densities, connectivity, \
             pair mirroring, timing staleness) and exit 10 if anything is broken.")
  in
  let run path unconstrained deadline persist audit obs quality =
    let result =
      match Lineio.read_all path with
      | exception Sys_error msg ->
        Error (Bgr_error.make ~file:path ~phase:"io" Bgr_error.Io_error "%s" msg)
      | text ->
        Result.bind
          (Result.bind (Design_io.of_string_result ~file:path text) Design_check.validate
          |> Result.map_error (Bgr_error.with_file path))
          (fun bundle -> Ok (text, bundle))
    in
    match result with
    | Error e ->
      prerr_endline (Bgr_error.to_string e);
      exit (Bgr_error.exit_code e.Bgr_error.code)
    | Ok (text, bundle) -> (
      obs_setup obs;
      let flight = flight_setup ~persist obs in
      let on_quality, quality_finish = quality_sink (quality_path ~persist quality) in
      match
        Lineio.protect ~file:path (fun () ->
            let input = Design_io.to_flow_input bundle in
            let timing_driven = not unconstrained in
            let budget = budget_of_deadline deadline in
            match persist with
            | None -> Flow.run ~timing_driven ~budget ?on_quality input
            | Some dir ->
              Persist.route ~timing_driven ~budget ?on_quality ~dir ~design_text:text input)
      with
      | Error e ->
        quality_finish ();
        obs_finish obs;
        flight_on_error flight e;
        prerr_endline (Bgr_error.to_string e);
        exit (Bgr_error.exit_code e.Bgr_error.code)
      | Ok outcome ->
        report_measurement (Filename.basename path) outcome.Flow.o_measurement;
        quality_finish ();
        obs_finish obs;
        flight_on_outcome flight outcome.Flow.o_measurement;
        if audit then run_audit outcome.Flow.o_router)
  in
  Cmd.v
    (Cmd.info "route-file"
       ~doc:
         "Route a design bundle written by export (or by hand).  Malformed or inconsistent \
          bundles are rejected with a file:line: message on stderr and a documented non-zero \
          exit code (2 parse, 3 validation/geometry, 4 unroutable, 5 injected fault, 6 \
          deadline, 7 I/O, 10 internal).")
    Term.(
      const run $ path_arg $ no_constraints $ deadline_arg $ persist_arg $ audit_flag
      $ obs_term $ quality_arg)

let resume_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Run directory written by route-file --persist.")
  in
  let repair_flag =
    Arg.(
      value
      & flag
      & info [ "repair" ]
          ~doc:
            "Let the audit rebuild derived state (densities, trees, timing) when it finds \
             corruption, instead of failing.")
  in
  let run dir domains deadline repair obs quality =
    obs_setup obs;
    let flight = flight_setup ~persist:(Some dir) obs in
    let on_quality, quality_finish =
      quality_sink (quality_path ~persist:(Some dir) quality)
    in
    match Persist.resume ~domains ~budget:(budget_of_deadline deadline) ?on_quality ~dir () with
    | Error e ->
      quality_finish ();
      obs_finish obs;
      flight_on_error flight e;
      prerr_endline (Bgr_error.to_string e);
      exit (Bgr_error.exit_code e.Bgr_error.code)
    | Ok r ->
      List.iter (fun w -> Printf.printf "resume: %s\n" w) r.Persist.rr_warnings;
      if r.Persist.rr_completed_at_load <> [] then
        Printf.printf "resume: phases already complete: %s\n"
          (String.concat ", " r.Persist.rr_completed_at_load);
      if r.Persist.rr_replayed > 0 then
        Printf.printf "resume: replayed %d journaled deletions\n" r.Persist.rr_replayed;
      let outcome = r.Persist.rr_outcome in
      report_measurement (Filename.basename dir ^ " (resumed)") outcome.Flow.o_measurement;
      quality_finish ();
      obs_finish obs;
      flight_on_outcome flight outcome.Flow.o_measurement;
      run_audit ~repair outcome.Flow.o_router
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume an interrupted route-file --persist run from its directory: restore the last \
          snapshot, replay the deletion journal (truncating a torn tail with a warning), \
          finish the run and audit the final state.  The result is bit-identical to an \
          uninterrupted run — compare the deletion hash rows.")
    Term.(const run $ dir_arg $ domains_arg $ deadline_arg $ repair_flag $ obs_term $ quality_arg)

let stats_cmd =
  let run case =
    let netlist = case.Suite.input.Flow.netlist in
    let s = Netlist.stats netlist in
    let t = Table.create ~title:("Circuit statistics: " ^ case.Suite.case_name) ~columns:[ "metric"; "value" ] in
    Table.add_row t [ "cells (non-feed)"; Table.fint s.Netlist.n_cells ];
    Table.add_row t [ "nets"; Table.fint s.Netlist.n_nets_total ];
    Table.add_row t [ "ports"; Table.fint (Netlist.n_ports netlist) ];
    Table.add_row t [ "constraints"; Table.fint (List.length case.Suite.input.Flow.constraints) ];
    Table.add_row t [ "differential pairs"; Table.fint s.Netlist.n_diff_pairs ];
    Table.add_row t [ "multi-pitch nets"; Table.fint s.Netlist.n_multi_pitch ];
    Table.add_row t [ "max fanout"; Table.fint s.Netlist.max_fanout ];
    Table.add_row t [ "avg fanout"; Table.f2 s.Netlist.avg_fanout ];
    Table.print t
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print netlist statistics of a case.") Term.(const run $ case_arg)

let timing_cmd =
  let k_arg =
    Arg.(value & opt int 3 & info [ "paths"; "k" ] ~doc:"Worst endpoints to list per constraint.")
  in
  let run case k =
    let outcome = Flow.run case.Suite.input in
    match outcome.Flow.o_sta with
    | None -> print_endline "no constraints: nothing to report"
    | Some sta ->
      let dg = Sta.delay_graph sta in
      let node_name v = Format.asprintf "%a" (Delay_graph.pp_node dg) (Delay_graph.node dg v) in
      for ci = 0 to Sta.n_constraints sta - 1 do
        let pc = Sta.constraint_ sta ci in
        Printf.printf "constraint %s: limit %.1f ps, delay %.1f ps, margin %.1f ps\n"
          pc.Path_constraint.cname pc.Path_constraint.limit_ps (Sta.critical_delay sta ci)
          (Sta.margin sta ci);
        List.iteri
          (fun i (r : Sta.endpoint_report) ->
            if i < k then begin
              Printf.printf "  %-28s slack %8.1f ps  (delay %.1f)\n" (node_name r.Sta.ep_vertex)
                r.Sta.ep_slack_ps r.Sta.ep_delay_ps;
              Printf.printf "    path:";
              List.iter (fun v -> Printf.printf " %s" (node_name v)) r.Sta.ep_path;
              print_newline ()
            end)
          (Sta.endpoint_reports sta ci)
      done;
      print_newline ();
      print_string (Slack_profile.render (Slack_profile.of_sta sta))
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"STA-style timing report of a routed case (worst endpoints and paths).")
    Term.(const run $ case_arg $ k_arg)

let view_cmd =
  let run case =
    let outcome = Flow.run case.Suite.input in
    let fp = outcome.Flow.o_floorplan in
    let m = outcome.Flow.o_measurement in
    Printf.printf "%s floorplan (north up; letters = cells, '+' = feed slots,
digits = width-flagged feeds):

"
      case.Suite.case_name;
    print_string (Layout_view.floorplan ~channel_tracks:m.Flow.m_tracks fp);
    let worst = Experiments.fig4_worst_channel outcome in
    Printf.printf "
most congested channel (%d), routed tracks top-down:

" worst;
    print_string
      (Layout_view.channel_tracks outcome.Flow.o_channels.(worst) ~width:(Floorplan.width fp));
    print_newline ();
    print_string (Route_stats.render (Route_stats.of_router outcome.Flow.o_router))
  in
  Cmd.v (Cmd.info "view" ~doc:"Render the routed layout and route-quality statistics.")
    Term.(const run $ case_arg)

let verify_cmd =
  let run case unconstrained domains =
    let options = { Router.default_options with Router.domains } in
    let outcome = Flow.run ~options ~timing_driven:(not unconstrained) case.Suite.input in
    let report = Verify.routed outcome.Flow.o_router in
    Format.printf "%a" Verify.pp report;
    if not (Verify.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Route a case and audit the result with the independent verifier.")
    Term.(const run $ case_arg $ no_constraints $ domains_arg)

let generate_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output bundle path.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let comb = Arg.(value & opt int 160 & info [ "gates" ] ~doc:"Combinational gate count.") in
  let ffs = Arg.(value & opt int 24 & info [ "ffs" ] ~doc:"Flip-flop count.") in
  let rows = Arg.(value & opt int 8 & info [ "rows" ] ~doc:"Cell rows.") in
  let pairs = Arg.(value & opt int 3 & info [ "pairs" ] ~doc:"Differential pairs.") in
  let constraints = Arg.(value & opt int 6 & info [ "constraints" ] ~doc:"Path constraints.") in
  let embed = Arg.(value & flag & info [ "embed-library" ] ~doc:"Embed the cell library.") in
  let run path seed comb ffs rows pairs n_constraints embed =
    let params =
      { Circuit_gen.default_params with
        Circuit_gen.seed = Int64.of_int seed;
        n_comb = comb;
        n_ff = ffs;
        n_diff_pairs = pairs;
        n_constraints }
    in
    let netlist, raw = Circuit_gen.generate params in
    let placed = Placement.place ~netlist ~n_rows:rows Placement.P1 in
    let input = Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints:raw placed in
    let constraints = Calibrate.against_reference_route ~input ~headroom:0.18 in
    let fp = Flow.floorplan_of_input input in
    Design_io.write ~embed_library:embed ~floorplan:fp ~constraints netlist ~path;
    let stats = Netlist.stats netlist in
    Printf.printf "wrote %s: %d cells, %d nets, %d constraints\n" path stats.Netlist.n_cells
      stats.Netlist.n_nets_total (List.length constraints)
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a synthetic circuit, place it, calibrate constraints, write a bundle.")
    Term.(const run $ path_arg $ seed $ comb $ ffs $ rows $ pairs $ constraints $ embed)

let signoff_cmd =
  let run case unconstrained domains obs =
    obs_setup obs;
    let options = { Router.default_options with Router.domains } in
    let outcome = Flow.run ~options ~timing_driven:(not unconstrained) case.Suite.input in
    let snap = Route_stats.snapshot outcome.Flow.o_router in
    Signoff.print ~snapshot:snap outcome;
    (* --obs-summary extends the sign-off with the worst-endpoints
       table (the slack histogram's per-endpoint companion). *)
    if obs.ob_summary then
      Option.iter
        (fun sta -> Table.print (Slack_profile.worst_endpoints sta))
        outcome.Flow.o_sta;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "signoff" ~doc:"Full sign-off report: metrics, verification, quality, slacks.")
    Term.(const run $ case_arg $ no_constraints $ domains_arg $ obs_term)

let main =
  let doc = "Timing- and area-driven global router for bipolar standard-cell LSIs (DAC'94 reproduction)" in
  Cmd.group (Cmd.info "bgr_run" ~doc)
    [ tables_cmd;
      route_cmd;
      density_cmd;
      ablation_cmd;
      stats_cmd;
      export_cmd;
      route_file_cmd;
      resume_cmd;
      view_cmd;
      timing_cmd;
      generate_cmd;
      verify_cmd;
      signoff_cmd ]

let () = exit (Cmd.eval main)
