(* CLI for the routing daemon.

     bgr_serve daemon --socket S --spool DIR     serve until drained
     bgr_serve worker --dir JOBDIR               one isolated routing attempt
     bgr_serve submit --socket S design.bgr      route a design bundle
     bgr_serve wait --socket S JOB               block until JOB finishes
     bgr_serve resume --socket S JOB             revive a dead-lettered job
     bgr_serve cancel --socket S JOB             cancel a queued or running job
     bgr_serve revive --socket S [--force] JOB   re-queue a dead or quarantined job
     bgr_serve status --socket S [JOB]           daemon or job status
     bgr_serve watch --socket S JOB              live progress tail of JOB
     bgr_serve stats --socket S [--prom]         live metrics snapshot
     bgr_serve analyze --socket S JOB            quality summary of JOB
     bgr_serve dump --socket S                   flight-recorder snapshot
     bgr_serve shutdown --socket S               ask the daemon to drain *)

open Cmdliner

let exit_overloaded = 12
let exit_canceled = 13
let exit_quarantined = 14

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix domain socket the daemon serves on (keep the path short: the OS caps it).")

let fail_error (e : Bgr_error.t) =
  Printf.eprintf "bgr_serve: %s\n%!" (Bgr_error.to_string e);
  exit (Bgr_error.exit_code e.Bgr_error.code)

let exit_of_code_name name =
  match Bgr_error.code_of_name name with
  | Some c -> Bgr_error.exit_code c
  | None -> (
    (* Daemon verdicts outside the pipeline taxonomy. *)
    match name with
    | "canceled" -> exit_canceled
    | "quarantined" -> exit_quarantined
    | _ -> exit_overloaded)

let fail_reply code message =
  Printf.eprintf "bgr_serve: daemon refused: [%s] %s\n%!" code message;
  exit (exit_of_code_name code)

let connect socket =
  match Serve_client.connect socket with Ok c -> c | Error e -> fail_error e

(* A Result reply carries the job's stored JSON; surface it verbatim
   plus the grep-friendly hash line the crash-recovery CI keys on. *)
let print_result_json json =
  print_endline json;
  match Qjson.parse json with
  | Error _ -> ()
  | Ok j -> (
    (match
       Option.bind
         (Option.bind (Qjson.member "deletion_hash" j) Qjson.to_str)
         int_of_string_opt
     with
    | Some h -> Printf.printf "deletion hash %d\n" h
    | None -> ());
    match Option.bind (Qjson.member "ok" j) (function Qjson.Bool b -> Some b | _ -> None) with
    | Some false ->
      let code =
        Option.value ~default:"internal"
          (Option.bind (Qjson.member "code" j) Qjson.to_str)
      in
      exit (exit_of_code_name code)
    | _ -> ())

let handle_common_reply = function
  | Wire.Rerror { code; message } -> fail_reply code message
  | Wire.Overloaded { reason; depth; cap } ->
    Printf.eprintf "bgr_serve: overloaded (%s): %d of %d slots in use\n%!" reason depth cap;
    exit exit_overloaded
  | reply -> reply

(* Read replies until the final Result, echoing any progress frames
   (one json line each) as they arrive. *)
let rec await_result c =
  match Serve_client.next_reply c with
  | Error e -> fail_error e
  | Ok (Wire.Progress { json; _ }) ->
    print_endline json;
    flush stdout;
    await_result c
  | Ok (Wire.Result { json; _ }) -> print_result_json json
  | Ok reply -> ignore (handle_common_reply reply)

(* --- daemon ------------------------------------------------------------ *)

let daemon_cmd =
  let spool_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR" ~doc:"Spool directory (jobs/ and dead/ live under it).")
  in
  let cap_arg =
    Arg.(
      value & opt int 16
      & info [ "cap" ] ~docv:"N"
          ~doc:"Admission cap: queued plus running jobs beyond it are refused as overloaded.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 2
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Attempts per job before it is retired to the dead-letter directory.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 250.0
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base retry backoff; it doubles with every further attempt.")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:"Router scoring domains per job (0 = auto).  Jobs run one at a time either way.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-job wall budget when the submission names none.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Rewrite the Prometheus metrics exposition there atomically: at startup, on \
             SIGUSR1, every $(b,--metrics-interval-s), and when the daemon drains.")
  in
  let metrics_interval_arg =
    Arg.(
      value & opt float 0.0
      & info [ "metrics-interval-s" ] ~docv:"S"
          ~doc:
            "Also rewrite the $(b,--metrics) file every S seconds, so kill -9 loses at most \
             one interval of counters (0 = only startup/SIGUSR1/drain writes).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.json"
          ~doc:
            "Record the daemon's spans as a Chrome trace_event file and stitch each worker's \
             spans and metrics back in (one Perfetto timeline across processes).")
  in
  let backoff_max_arg =
    Arg.(
      value & opt float 30_000.0
      & info [ "backoff-max-ms" ] ~docv:"MS" ~doc:"Cap on the (jittered) retry backoff.")
  in
  let in_process_arg =
    Arg.(
      value & flag
      & info [ "in-process" ]
          ~doc:
            "Run routing attempts on the executor domain instead of isolated worker \
             subprocesses.  Disables the hang watchdog, cancel-while-running and the memory \
             ceiling.")
  in
  let heartbeat_arg =
    Arg.(
      value & opt float 10_000.0
      & info [ "heartbeat-timeout-ms" ] ~docv:"MS"
          ~doc:"Watchdog: SIGKILL a worker whose heartbeats go silent this long.")
  in
  let grace_arg =
    Arg.(
      value & opt float 30_000.0
      & info [ "hard-grace-ms" ] ~docv:"MS"
          ~doc:"SIGKILL a worker still alive this long past its wall deadline.")
  in
  let mem_limit_arg =
    Arg.(
      value & opt int 0
      & info [ "mem-limit-mb" ] ~docv:"MB"
          ~doc:"Address-space ceiling per worker (0 = none).")
  in
  let quarantine_arg =
    Arg.(
      value & opt int 3
      & info [ "quarantine-kills" ] ~docv:"N"
          ~doc:
            "Quarantine a job after its workers were killed this many times; a quarantined \
             job only runs again via $(b,revive --force).")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No operational log lines.") in
  let run socket spool cap attempts backoff backoff_max domains deadline metrics
      metrics_interval trace in_process heartbeat grace mem_limit quarantine quiet =
    Obs.enable ();
    Obs.Trace.set_pid (Unix.getpid ());
    Option.iter Obs.Trace.to_chrome_file trace;
    let log line = if not quiet then Printf.eprintf "[bgr_serve] %s\n%!" line in
    let isolation =
      if in_process then Serve.In_process
      else Serve.Workers [| Sys.executable_name; "worker" |]
    in
    let cfg =
      { (Serve.default_config ~socket_path:socket ~spool_root:spool) with
        Serve.queue_cap = cap;
        max_attempts = attempts;
        backoff_base_ms = backoff;
        backoff_max_ms = backoff_max;
        job_domains = domains;
        default_deadline_ms = deadline;
        install_signals = true;
        isolation;
        heartbeat_timeout_ms = heartbeat;
        hard_deadline_grace_ms = grace;
        mem_limit_mb = mem_limit;
        quarantine_kills = quarantine;
        stitch_workers = (trace <> None && not in_process);
        metrics_path = metrics;
        metrics_interval_s = metrics_interval;
        log }
    in
    match Serve.run cfg with
    | exception Bgr_error.Error e -> fail_error e
    | stats ->
      Obs.Trace.close_sinks ();
      List.iter (fun w -> log (Printf.sprintf "obs: %s" w)) (Obs.warnings ());
      Printf.printf
        "drained: requeued %d, accepted %d, completed %d, failed %d, retried %d, rejected %d, \
         protocol errors %d, canceled %d, quarantined %d, worker kills %d\n"
        stats.Serve.s_requeued stats.Serve.s_accepted stats.Serve.s_completed
        stats.Serve.s_failed stats.Serve.s_retried stats.Serve.s_rejected
        stats.Serve.s_protocol_errors stats.Serve.s_canceled stats.Serve.s_quarantined
        stats.Serve.s_killed
  in
  Cmd.v
    (Cmd.info "daemon" ~doc:"Serve routing jobs until SIGTERM (or a shutdown request) drains it.")
    Term.(
      const run $ socket_arg $ spool_arg $ cap_arg $ attempts_arg $ backoff_arg
      $ backoff_max_arg $ domains_arg $ deadline_arg $ metrics_arg $ metrics_interval_arg
      $ trace_arg $ in_process_arg $ heartbeat_arg $ grace_arg $ mem_limit_arg
      $ quarantine_arg $ quiet_arg)

(* --- worker ------------------------------------------------------------ *)

(* The subprocess the daemon spawns per routing attempt.  Not meant for
   interactive use; it reports BGRW1 frames on stdout. *)
let worker_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Spool job directory (contains JOB and design.bgr).")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N" ~doc:"Router scoring domains (0 = auto).")
  in
  let default_deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:"Wall budget when the job manifest names none.")
  in
  let mem_limit_arg =
    Arg.(
      value & opt int 0
      & info [ "mem-limit-mb" ] ~docv:"MB" ~doc:"Address-space ceiling (0 = none).")
  in
  let obs_arg =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Record this attempt's spans and metrics into per-attempt files in the job \
             directory and report an obs summary frame (the daemon's stitch handshake).")
  in
  let trace_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID" ~doc:"Trace id to stamp on every recorded span.")
  in
  let parent_span_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "parent-span" ] ~docv:"N"
          ~doc:"Daemon span id this attempt's top-level spans hang off in the merged trace.")
  in
  let run dir domains default_deadline mem_limit obs trace_id parent_span =
    Worker.main ~domains ?default_deadline_ms:default_deadline ~mem_limit_mb:mem_limit
      ?trace_id ?parent_span ~obs ~dir ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run one isolated routing attempt on a spool job directory (spawned by the daemon; \
          reports over stdout).")
    Term.(
      const run $ dir_arg $ domains_arg $ default_deadline_arg $ mem_limit_arg $ obs_arg
      $ trace_id_arg $ parent_span_arg)

(* --- submit ------------------------------------------------------------ *)

let submit_cmd =
  let design_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DESIGN" ~doc:"Design bundle (.bgr) to route.")
  in
  let wait_arg =
    Arg.(value & flag & info [ "wait"; "w" ] ~doc:"Block until the job finishes; print its result.")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"ID" ~doc:"Job id to use instead of a generated one.")
  in
  let unconstrained_arg =
    Arg.(value & flag & info [ "no-constraints"; "u" ] ~doc:"Route without timing constraints.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Wall budget for this job's improvement phases.")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"With $(b,--wait): also print each progress frame (one json line) as it arrives.")
  in
  let run socket design wait name unconstrained deadline progress =
    let text =
      try Lineio.read_all design
      with Sys_error msg ->
        fail_error (Bgr_error.make ~file:design Bgr_error.Io_error "%s" msg)
    in
    let wait = wait || progress in
    let c = connect socket in
    let req =
      Wire.Route
        { wait;
          progress;
          timing_driven = not unconstrained;
          deadline_ms = deadline;
          name;
          design = text }
    in
    (match handle_common_reply (Result.fold ~ok:Fun.id ~error:fail_error (Serve_client.request c req)) with
    | Wire.Accepted { job } ->
      Printf.printf "accepted %s\n%!" job;
      if wait then await_result c
    | Wire.Result { json; _ } -> print_result_json json
    | _ -> fail_reply "internal" "unexpected reply to submit");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a design bundle for routing.")
    Term.(
      const run $ socket_arg $ design_arg $ wait_arg $ name_arg $ unconstrained_arg
      $ deadline_arg $ progress_arg)

(* --- wait / resume ----------------------------------------------------- *)

let job_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id.")

let wait_like name ~doc =
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Also print each progress frame (one json line) while the job runs.")
  in
  let run socket progress job =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error
            (Serve_client.request c (Wire.Resume { wait = true; progress; job })))
     with
    | Wire.Result { json; _ } -> print_result_json json
    | Wire.Accepted _ -> await_result c
    | _ -> fail_reply "internal" "unexpected reply");
    Serve_client.close c
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ socket_arg $ progress_arg $ job_pos)

let wait_cmd = wait_like "wait" ~doc:"Block until a job finishes; print its result."

let resume_cmd =
  wait_like "resume"
    ~doc:
      "Re-queue a job (reviving it from the dead-letter directory if needed) and wait for the \
       result."

(* --- cancel / revive --------------------------------------------------- *)

let cancel_cmd =
  let run socket job =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error
            (Serve_client.request c (Wire.Cancel { job })))
     with
    | Wire.Info { json } -> print_endline json
    | _ -> fail_reply "internal" "unexpected reply");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Cancel a job: drop it from the queue, or kill its running worker.  Its waiters get \
          a structured canceled error.")
    Term.(const run $ socket_arg $ job_pos)

let revive_cmd =
  let wait_arg =
    Arg.(value & flag & info [ "wait"; "w" ] ~doc:"Block until the revived job finishes.")
  in
  let force_arg =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:"Required for quarantined jobs (ones that repeatedly killed their worker).")
  in
  let run socket wait force job =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error
            (Serve_client.request c (Wire.Revive { wait; force; job })))
     with
    | Wire.Result { json; _ } -> print_result_json json
    | Wire.Accepted { job = id } ->
      Printf.printf "accepted %s\n%!" id;
      if wait then await_result c
    | _ -> fail_reply "internal" "unexpected reply");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "revive"
       ~doc:
         "Re-queue a dead-lettered job; with $(b,--force), also a quarantined one (attempt \
          and kill counters reset).")
    Term.(const run $ socket_arg $ wait_arg $ force_arg $ job_pos)

(* --- status / analyze / shutdown --------------------------------------- *)

let status_cmd =
  let job_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id.") in
  let run socket job =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error
            (Serve_client.request c (Wire.Status { job })))
     with
    | Wire.Info { json } -> print_endline json
    | _ -> fail_reply "internal" "unexpected reply");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Daemon status, or one job's state.")
    Term.(const run $ socket_arg $ job_arg)

let watch_cmd =
  let run socket job =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error
            (Serve_client.request c (Wire.Watch { job })))
     with
    | Wire.Result { json; _ } ->
      (* Already finished: the stored verdict is the whole story. *)
      print_result_json json
    | Wire.Info { json } ->
      print_endline json;
      flush stdout;
      await_result c
    | _ -> fail_reply "internal" "unexpected reply to watch");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Tail a job's live progress: one json line per worker heartbeat (phase, pass, \
          deletions, worst margin), then the final result.")
    Term.(const run $ socket_arg $ job_pos)

let stats_cmd =
  let prom_arg =
    Arg.(
      value & flag
      & info [ "prom" ] ~doc:"Prometheus text exposition instead of the json snapshot.")
  in
  let run socket prom =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error
            (Serve_client.request c (Wire.Stats { prom })))
     with
    | Wire.Rstats { body; _ } -> print_string body
    | _ -> fail_reply "internal" "unexpected reply to stats");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Scrape the daemon's live metrics registry (no drain needed): json by default, \
          Prometheus text with $(b,--prom).")
    Term.(const run $ socket_arg $ prom_arg)

let analyze_cmd =
  let run socket job =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error
            (Serve_client.request c (Wire.Analyze { job })))
     with
    | Wire.Info { json } -> print_endline json
    | _ -> fail_reply "internal" "unexpected reply");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Solution-quality summary of a job's recorded .bgrq log.")
    Term.(const run $ socket_arg $ job_pos)

let dump_cmd =
  let run socket =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error (Serve_client.request c Wire.Dump))
     with
    | Wire.Info { json } -> print_endline json
    | _ -> fail_reply "internal" "unexpected reply to dump");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Snapshot the daemon's flight recorder into the spool root (flight.bgrf) and ask \
          the running worker, if any, to dump its own; feed the files to $(b,bgr_analyze \
          postmortem).")
    Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    let c = connect socket in
    (match
       handle_common_reply
         (Result.fold ~ok:Fun.id ~error:fail_error (Serve_client.request c Wire.Shutdown))
     with
    | Wire.Info { json } -> print_endline json
    | _ -> fail_reply "internal" "unexpected reply");
    Serve_client.close c
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to drain: finish the running job, keep the rest spooled.")
    Term.(const run $ socket_arg)

let main =
  let doc = "Routing-as-a-service daemon and client for the DAC'94 global router" in
  Cmd.group (Cmd.info "bgr_serve" ~doc)
    [ daemon_cmd; worker_cmd; submit_cmd; wait_cmd; resume_cmd; cancel_cmd; revive_cmd;
      status_cmd; watch_cmd; stats_cmd; analyze_cmd; dump_cmd; shutdown_cmd ]

let () = exit (Cmd.eval main)
