(* Offline explorer for solution-quality event logs (.bgrq).

     bgr_analyze report RUN [--out DIR]   convergence/density/slack SVGs + quality.json
     bgr_analyze diff A B                 thresholded A/B regression gate
     bgr_analyze postmortem DIR           crash forensics: verdict + postmortem.json + SVG *)

open Cmdliner

let fail_with (e : Bgr_error.t) =
  prerr_endline (Bgr_error.to_string e);
  exit (Bgr_error.exit_code e.Bgr_error.code)

(* A PATH argument names either a .bgrq file or a run directory holding
   one under the conventional name. *)
let resolve_log path =
  if Sys.file_exists path && Sys.is_directory path then Filename.concat path Qlog.default_filename
  else path

let read_log path =
  match Qlog.read ~path:(resolve_log path) with
  | Error e -> fail_with e
  | Ok r ->
    List.iter (fun w -> Printf.eprintf "warning: %s\n%!" w) r.Qlog.warnings;
    r.Qlog.records

let write_file path s =
  match
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  with
  | () -> Printf.printf "wrote %s\n" path
  | exception Sys_error msg ->
    fail_with (Bgr_error.make ~file:path ~phase:"analyze" Bgr_error.Io_error "%s" msg)

let summary_table (s : Quality.summary) =
  let t = Table.create ~title:"Quality summary" ~columns:[ "metric"; "value" ] in
  let add k v = Table.add_row t [ k; v ] in
  add "samples" (Table.fint s.Quality.sm_samples);
  add "wall clock (s)" (Table.f2 s.Quality.sm_wall_s);
  add "final worst margin (ps)" (Table.f1 s.Quality.sm_final_worst_margin_ps);
  add "final worst constraint"
    (if s.Quality.sm_final_worst_constraint < 0 then "-"
     else Printf.sprintf "P%d" s.Quality.sm_final_worst_constraint);
  add "final total negative margin (ps)" (Table.f1 s.Quality.sm_final_total_negative_ps);
  add "final violations" (Table.fint s.Quality.sm_final_violations);
  add "final peak density (tracks)" (Table.fint s.Quality.sm_final_peak_density);
  add "deletions" (Table.fint s.Quality.sm_final_deletions);
  add "endpoint slack min (ps)" (Table.f1 s.Quality.sm_final_ep_slack_min_ps);
  add "endpoint slack max (ps)" (Table.f1 s.Quality.sm_final_ep_slack_max_ps);
  t

(* Rows = phases, columns = the union of winning-criterion names: which
   selection rule drove the deletions of each phase. *)
let criteria_table (s : Quality.summary) =
  let names =
    List.sort_uniq compare
      (List.concat_map
         (fun (p : Quality.phase_stat) -> List.map fst p.Quality.ph_criteria)
         s.Quality.sm_phases)
  in
  let t =
    Table.create ~title:"Deletions by winning criterion"
      ~columns:("phase" :: (names @ [ "total" ]))
  in
  List.iter
    (fun (p : Quality.phase_stat) ->
      let count n = Option.value (List.assoc_opt n p.Quality.ph_criteria) ~default:0 in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 p.Quality.ph_criteria in
      Table.add_row t
        (p.Quality.ph_phase
        :: (List.map (fun n -> Table.fint (count n)) names @ [ Table.fint total ])))
    s.Quality.sm_phases;
  t

let phase_table (s : Quality.summary) =
  let t =
    Table.create ~title:"Phase progression"
      ~columns:
        [ "phase"; "passes"; "wall (s)"; "deletions"; "worst margin (ps)"; "violations";
          "peak density" ]
  in
  List.iter
    (fun (p : Quality.phase_stat) ->
      Table.add_row t
        [ p.Quality.ph_phase;
          Table.fint p.Quality.ph_passes;
          Table.f2 p.Quality.ph_wall_s;
          Table.fint p.Quality.ph_deletions;
          Table.f1 p.Quality.ph_worst_margin_ps;
          Table.fint p.Quality.ph_violations;
          Table.fint p.Quality.ph_peak_density ])
    s.Quality.sm_phases;
  t

let report_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RUN" ~doc:"A .bgrq quality log, or a run directory holding quality.bgrq.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Output directory for quality.json and the SVGs (default: next to the log).")
  in
  let run path out =
    let records = read_log path in
    if records = [] then Printf.eprintf "warning: the quality log holds no samples\n%!";
    let summary = Quality.summarize records in
    let dir = match out with Some d -> d | None -> Filename.dirname (resolve_log path) in
    (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
     with Unix.Unix_error (e, _, _) ->
       fail_with
         (Bgr_error.make ~file:dir ~phase:"analyze" Bgr_error.Io_error "%s" (Unix.error_message e)));
    Table.print (summary_table summary);
    Table.print (phase_table summary);
    Table.print (criteria_table summary);
    let ( / ) = Filename.concat in
    write_file (dir / "quality.json") (Quality.to_json summary ^ "\n");
    write_file (dir / "convergence.svg") (Qsvg.convergence records);
    write_file (dir / "density_heatmap.svg") (Qsvg.density_heatmap records);
    write_file (dir / "slack_waterfall.svg") (Qsvg.slack_waterfall summary)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize a quality log: convergence and channel-density SVGs, a per-constraint \
          slack waterfall, criterion-attribution tables and a machine-readable quality.json.")
    Term.(const run $ path_arg $ out_arg)

(* A diff operand accepts a run directory (preferring its quality.json,
   falling back to the raw log), a .json summary or a .bgrq log. *)
let load_summary path =
  let json_of p =
    match
      let ic = open_in_bin p in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> (
      match Quality.of_json_string ~file:p s with Ok s -> s | Error e -> fail_with e)
    | exception Sys_error msg ->
      fail_with (Bgr_error.make ~file:p ~phase:"analyze" Bgr_error.Io_error "%s" msg)
  in
  if Sys.file_exists path && Sys.is_directory path then begin
    let j = Filename.concat path "quality.json" in
    if Sys.file_exists j then json_of j
    else Quality.summarize (read_log path)
  end
  else if Filename.check_suffix path ".json" then json_of path
  else Quality.summarize (read_log path)

let diff_cmd =
  let a_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline run: a directory, quality.json or .bgrq log.")
  in
  let b_arg =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"CANDIDATE" ~doc:"Candidate run.")
  in
  let tol_arg =
    Arg.(
      value
      & opt float 1e-3
      & info [ "margin-tol-ps" ] ~docv:"PS"
          ~doc:"Margin drop below the baseline that counts as a regression.")
  in
  let wall_factor_arg =
    Arg.(
      value
      & opt float 1.5
      & info [ "wall-factor" ] ~docv:"X" ~doc:"Wall-clock slowdown factor that regresses.")
  in
  let wall_floor_arg =
    Arg.(
      value
      & opt float 1.0
      & info [ "wall-floor-s" ] ~docv:"S"
          ~doc:"Absolute wall-clock allowance added on top of the factor (noise floor).")
  in
  let run a b margin_tol_ps wall_factor wall_floor_s =
    let sa = load_summary a and sb = load_summary b in
    let checks = Quality.diff ~margin_tol_ps ~wall_factor ~wall_floor_s sa sb in
    let t =
      Table.create ~title:(Printf.sprintf "Run diff: %s vs %s" a b)
        ~columns:[ "metric"; "baseline"; "candidate"; "verdict"; "note" ]
    in
    List.iter
      (fun (c : Quality.check) ->
        Table.add_row t
          [ c.Quality.ck_metric; c.Quality.ck_a; c.Quality.ck_b;
            Quality.verdict_string c.Quality.ck_verdict; c.Quality.ck_note ])
      checks;
    Table.print t;
    if Quality.regressed checks then begin
      print_endline "REGRESSED";
      exit 1
    end
    else print_endline "PASS"
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare a candidate run's quality summary against a baseline with regression \
          thresholds; prints PASS or REGRESSED and exits non-zero on a regression — the CI \
          gate.")
    Term.(const run $ a_arg $ b_arg $ tol_arg $ wall_factor_arg $ wall_floor_arg)

(* --- crash forensics --------------------------------------------------- *)

let verdict_table (r : Postmortem.report) =
  let t = Table.create ~title:"Postmortem" ~columns:[ "fact"; "value" ] in
  let add k v = Table.add_row t [ k; v ] in
  add "directory" r.Postmortem.p_dir;
  add "verdict" r.Postmortem.p_verdict;
  add "last phase"
    (if r.Postmortem.p_last_phase = "" then "-" else r.Postmortem.p_last_phase);
  add "last pass" (Table.fint r.Postmortem.p_last_pass);
  add "deletions"
    (if r.Postmortem.p_deletions < 0 then "-" else Table.fint r.Postmortem.p_deletions);
  add "worst margin (ps)" (Table.f1 r.Postmortem.p_worst_margin_ps);
  (match r.Postmortem.p_flight with
  | None -> add "flight record" "-"
  | Some d ->
    add "flight record"
      (Printf.sprintf "%s (reason: %s, pid %d)" r.Postmortem.p_flight_file
         d.Flight.f_reason d.Flight.f_pid));
  (match r.Postmortem.p_job with
  | None -> ()
  | Some j ->
    add "job" j.Postmortem.j_id;
    add "attempts" (Table.fint j.Postmortem.j_attempts);
    add "kills"
      (if j.Postmortem.j_kills = 0 then "0"
       else
         Printf.sprintf "%d (%s)" j.Postmortem.j_kills
           (String.concat ", " j.Postmortem.j_kill_history)));
  if r.Postmortem.p_error_code <> "" then add "error code" r.Postmortem.p_error_code;
  add "RESULT present" (if r.Postmortem.p_has_result then "yes" else "no");
  t

let artifact_table (r : Postmortem.report) =
  let t =
    Table.create ~title:"Artifact survey" ~columns:[ "file"; "kind"; "bytes"; "note" ]
  in
  List.iter
    (fun (a : Postmortem.artifact) ->
      Table.add_row t
        [ a.Postmortem.a_file; a.Postmortem.a_kind;
          (if a.Postmortem.a_present then Table.fint a.Postmortem.a_bytes else "-");
          (if a.Postmortem.a_note <> "" then a.Postmortem.a_note
           else if a.Postmortem.a_present then ""
           else "absent") ])
    r.Postmortem.p_artifacts;
  t

let postmortem_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:
            "A run directory ($(b,bgr_run --persist)) or a spool job directory \
             (jobs/NAME, dead/NAME or quarantine/NAME).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Where to write postmortem.json and timeline.svg (default: $(i,DIR) itself).")
  in
  let window_arg =
    Arg.(
      value
      & opt float 30.0
      & info [ "window-s" ] ~docv:"S" ~doc:"Timeline SVG span: the last $(i,S) seconds.")
  in
  let run dir out window_s =
    match Postmortem.analyze ~dir with
    | Error e -> fail_with e
    | Ok r ->
      let out = match out with Some d -> d | None -> dir in
      (try if not (Sys.file_exists out) then Unix.mkdir out 0o755
       with Unix.Unix_error (e, _, _) ->
         fail_with
           (Bgr_error.make ~file:out ~phase:"analyze" Bgr_error.Io_error "%s"
              (Unix.error_message e)));
      Table.print (verdict_table r);
      Table.print (artifact_table r);
      if r.Postmortem.p_findings <> [] then begin
        print_endline "Findings:";
        List.iter (fun f -> Printf.printf "  - %s\n" f) r.Postmortem.p_findings
      end;
      let ( / ) = Filename.concat in
      write_file (out / "postmortem.json")
        (Qjson.to_string (Postmortem.to_json r) ^ "\n");
      write_file (out / "timeline.svg") (Postmortem.timeline_svg ~window_s r);
      (* the one-line answer, last, where a scrollback lands *)
      Printf.printf "verdict: %s — %s\n" r.Postmortem.p_verdict r.Postmortem.p_headline
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Assemble a crash-forensics bundle from a run or spool-job directory: correlate \
          the flight record with the journal tail, quality-log tail, kill history and \
          RESULT/ERROR verdicts into one classifying verdict line, a machine-readable \
          postmortem.json and a last-seconds timeline SVG.")
    Term.(const run $ dir_arg $ out_arg $ window_arg)

let main =
  let doc = "Offline solution-quality analytics for bgr_run --quality-log event logs" in
  Cmd.group (Cmd.info "bgr_analyze" ~doc) [ report_cmd; diff_cmd; postmortem_cmd ]

let () = exit (Cmd.eval main)
