(* Load test for the routing daemon: an in-process server under
   concurrent closed-loop clients.

     serve_load [--clients K] [--jobs-per-client M] [--cap N] [--bench-out PATH]
                [--worker-exe BGR_SERVE] [--hang-n K] [--kill-n K]
                [--heartbeat-timeout-ms MS] [--quarantine-kills N]
                [--scrape-ms MS]

   K client domains each submit M routing jobs (the MINI design,
   wait-mode) over their own connection.  Admission sheds are counted
   and retried after a short pause, so the drive pushes the daemon into
   its overload regime without losing work.  The report: throughput,
   latency percentiles, shed/retry counts, and the registry payload on
   one BENCH_METRICS_JSON line (persisted via --bench-out /
   BGR_BENCH_OUT like bench/main.exe).  Every job's deletion hash is
   checked against the uninterrupted in-process run: load must never
   change the answer.

   Before the drive the bench also charges the always-on flight
   recorder: per-event record cost times the events one route records,
   as a fraction of the route's wall clock ([--overhead-reps N] routing
   reps, default 5), reported as serve_load_recorder_overhead_pct in
   the payload and gated under 2 % — with the deletion hash checked
   bit-identical with the recorder off and on.

   --worker-exe switches the daemon to worker isolation (the argument
   is the bgr_serve binary); --hang-n / --kill-n then install a
   BGR_FAULT_PLAN chaos mix where each job's K-th attempt hangs its
   worker / SIGKILLs it, so the drive exercises the watchdog and
   crash-resume machinery under concurrency.

   --scrape-ms adds a scraping client: its own connection polling the
   stats opcode (alternating json and Prometheus text) every MS
   milliseconds for the whole drive, asserting mid-run freshness — the
   exposition must be well-formed and its job counters must advance
   while jobs are still completing, i.e. without any drain. *)

let arg_int name default =
  let v = ref default in
  Array.iteri
    (fun i a ->
      if a = name && i + 1 < Array.length Sys.argv then
        match int_of_string_opt Sys.argv.(i + 1) with Some n -> v := n | None -> ())
    Sys.argv;
  !v

let arg_str name =
  let v = ref None in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length Sys.argv then v := Some Sys.argv.(i + 1))
    Sys.argv;
  !v

let bench_out_path () =
  let from_argv = ref None in
  Array.iteri
    (fun i a ->
      if a = "--bench-out" && i + 1 < Array.length Sys.argv then
        from_argv := Some Sys.argv.(i + 1)
      else if String.length a > 12 && String.sub a 0 12 = "--bench-out=" then
        from_argv := Some (String.sub a 12 (String.length a - 12)))
    Sys.argv;
  match !from_argv with Some p -> Some p | None -> Sys.getenv_opt "BGR_BENCH_OUT"

(* load-driver metric families (client-side view of the daemon) *)
let g_throughput =
  Obs.Metrics.gauge ~help:"Completed routing jobs per second under load"
    "serve_load_throughput_jobs_per_s"

let g_latency =
  Obs.Metrics.gauge ~help:"Client-observed job latency percentiles (ms)"
    ~labels:[ "quantile" ] "serve_load_latency_ms"

let g_shed =
  Obs.Metrics.gauge ~help:"Submissions shed by admission control during the drive"
    "serve_load_shed_total"

let g_overhead =
  Obs.Metrics.gauge
    ~help:"Flight-recorder routing overhead, percent of recorder-off wall clock"
    "serve_load_recorder_overhead_pct"

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

type client_report = { latencies : float list; shed : int; failures : string list }

let () =
  let clients = arg_int "--clients" 4 in
  let jobs_per_client = arg_int "--jobs-per-client" 3 in
  let cap = arg_int "--cap" 4 in
  let worker_exe = arg_str "--worker-exe" in
  let hang_n = arg_int "--hang-n" 0 in
  let kill_n = arg_int "--kill-n" 0 in
  let heartbeat_timeout_ms = arg_int "--heartbeat-timeout-ms" 10_000 in
  let quarantine_kills = arg_int "--quarantine-kills" 3 in
  let scrape_ms = arg_int "--scrape-ms" 0 in
  (* The plan is read from the environment once per process, so it must
     be in place before any worker subprocess starts.  Worker fault
     sites never trip in this process, so loading it here is inert. *)
  let fault_plan =
    (if hang_n > 0 then [ Printf.sprintf "serve.worker.hang:n=%d" hang_n ] else [])
    @ if kill_n > 0 then [ Printf.sprintf "serve.worker.kill:n=%d" kill_n ] else []
  in
  if fault_plan <> [] then Unix.putenv "BGR_FAULT_PLAN" (String.concat ";" fault_plan);
  Obs.enable ();
  let input = (Suite.mini ()).Suite.input in
  let design =
    let fp = Flow.floorplan_of_input input in
    Design_io.to_string ~floorplan:fp ~constraints:input.Flow.constraints input.Flow.netlist
  in
  let options = { Router.default_options with Router.domains = 1 } in
  let reference = (Flow.run ~options input).Flow.o_measurement.Flow.m_deletion_hash in
  (* The flight recorder is always on, so its cost is baked into every
     number this bench reports.  Charge it explicitly.  A wall-clock
     A/B cannot resolve a sub-2 % delta on a ~35 ms route on a shared
     machine (run-to-run swing is an order of magnitude larger), so
     the attribution is composed from quiet measurements instead:
     the hot per-event record cost (tight loop, ring wrap included)
     times the events one route records, over the route's best
     wall clock.  The recorder's inertness is still checked exactly —
     hashes with it off and on must match the reference bit-for-bit. *)
  let overhead_reps = arg_int "--overhead-reps" 5 in
  let time_route () =
    let t = Unix.gettimeofday () in
    let h = (Flow.run ~options input).Flow.o_measurement.Flow.m_deletion_hash in
    (Unix.gettimeofday () -. t, h)
  in
  ignore (time_route ());
  Flight.set_enabled false;
  let _, h_off = time_route () in
  Flight.set_enabled true;
  let events_before = Flight.recorded () in
  let t_on = ref infinity and h_on = ref 0 in
  for _ = 1 to overhead_reps do
    let dt, h = time_route () in
    if dt < !t_on then t_on := dt;
    h_on := h
  done;
  let events_per_route = (Flight.recorded () - events_before) / overhead_reps in
  let per_event_s =
    let n = 2_000_000 in
    let t = Unix.gettimeofday () in
    for i = 1 to n do
      Flight.record Flight.k_heartbeat ~a:1 ~b:2 ~c:i ~d:(-7)
    done;
    (Unix.gettimeofday () -. t) /. float_of_int n
  in
  let recorder_overhead_pct =
    float_of_int events_per_route *. per_event_s /. !t_on *. 100.0
  in
  Obs.Metrics.set g_overhead recorder_overhead_pct;
  Printf.printf
    "recorder overhead: %d events/route x %.0f ns over %.1f ms routed = %.3f%% (gate < 2%%)\n%!"
    events_per_route (per_event_s *. 1e9) (!t_on *. 1000.0) recorder_overhead_pct;
  if h_off <> reference || !h_on <> reference then begin
    Printf.printf "FAILURE: recorder toggling changed the deletion hash (off %d, on %d, ref %d)\n"
      h_off !h_on reference;
    exit 1
  end;
  if recorder_overhead_pct >= 2.0 then begin
    Printf.printf "FAILURE: flight-recorder overhead %.3f%% breaches the 2%% gate\n"
      recorder_overhead_pct;
    exit 1
  end;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bgrload%d" (Unix.getpid ()))
  in
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket_path = Filename.concat root "s.sock" in
  let cfg =
    { (Serve.default_config ~socket_path ~spool_root:(Filename.concat root "spool")) with
      Serve.queue_cap = cap;
      job_domains = 1;
      isolation =
        (match worker_exe with
        | None -> Serve.In_process
        | Some exe -> Serve.Workers [| exe; "worker" |]);
      heartbeat_timeout_ms = float_of_int heartbeat_timeout_ms;
      quarantine_kills }
  in
  let server = Domain.spawn (fun () -> Serve.run cfg) in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists socket_path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Printf.printf "serve load: %d clients x %d jobs, admission cap %d\n%!" clients
    jobs_per_client cap;
  let hash_of json =
    Result.to_option (Qjson.parse json)
    |> Fun.flip Option.bind (Qjson.member "deletion_hash")
    |> Fun.flip Option.bind Qjson.to_str
    |> Fun.flip Option.bind int_of_string_opt
  in
  let t0 = Unix.gettimeofday () in
  (* The scraping client: proof the stats plane answers mid-run.  It
     keeps polling on its own connection until the drive ends, so every
     sample lands while the daemon is busy, not after the drain. *)
  let scrape_stop = Atomic.make false in
  let scraper () =
    if scrape_ms <= 0 then (0, 0, [])
    else
      match Serve_client.connect socket_path with
      | Error e -> (0, 0, [ Printf.sprintf "scraper: %s" e.Bgr_error.message ])
      | Ok c ->
        let scrapes = ref 0 and fresh = ref 0 and fails = ref [] in
        let jobs_total body =
          (* sum of serve_jobs_total series in the Prometheus text *)
          List.fold_left
            (fun acc line ->
              if String.length line > 16 && String.sub line 0 16 = "serve_jobs_total" then
                match String.rindex_opt line ' ' with
                | None -> acc
                | Some i -> (
                  match
                    float_of_string_opt
                      (String.sub line (i + 1) (String.length line - i - 1))
                  with
                  | Some v -> acc +. v
                  | None -> acc)
              else acc)
            0.0
            (String.split_on_char '\n' body)
        in
        let last_total = ref (-1.0) in
        while not (Atomic.get scrape_stop) do
          let prom = !scrapes mod 2 = 1 in
          (match Serve_client.request ~timeout_s:30.0 c (Wire.Stats { prom }) with
          | Ok (Wire.Rstats { body; prom = p }) ->
            incr scrapes;
            if p <> prom || body = "" then
              fails := Printf.sprintf "scraper: bad rstats (prom %b)" prom :: !fails
            else if prom then begin
              if not (String.length body > 0 && body.[0] = '#') then
                fails := "scraper: prom exposition lacks # comments" :: !fails;
              let total = jobs_total body in
              if total > !last_total then begin
                incr fresh;
                last_total := total
              end
            end
            else (
              match Qjson.parse body with
              | Ok _ -> ()
              | Error m -> fails := Printf.sprintf "scraper: json scrape: %s" m :: !fails)
          | Ok _ -> fails := "scraper: unexpected reply to stats" :: !fails
          | Error e ->
            fails := Printf.sprintf "scraper: %s" e.Bgr_error.message :: !fails;
            Atomic.set scrape_stop true);
          Unix.sleepf (float_of_int scrape_ms /. 1000.0)
        done;
        Serve_client.close c;
        (!scrapes, !fresh, !fails)
  in
  let scraper_domain = Domain.spawn scraper in
  let client k () =
    match Serve_client.connect socket_path with
    | Error e -> { latencies = []; shed = 0; failures = [ e.Bgr_error.message ] }
    | Ok c ->
      let shed = ref 0 and lats = ref [] and fails = ref [] in
      for j = 1 to jobs_per_client do
        let name = Printf.sprintf "c%d-j%d" k j in
        let rec submit () =
          let js = Unix.gettimeofday () in
          match
            Serve_client.request ~timeout_s:300.0 c
              (Wire.Route
                 { wait = true; progress = false; timing_driven = true; deadline_ms = None;
                   name = Some name; design })
          with
          | Ok (Wire.Overloaded _) ->
            (* shed: back off briefly, resubmit (closed loop) *)
            incr shed;
            Unix.sleepf 0.05;
            submit ()
          | Ok (Wire.Accepted _) -> (
            match Serve_client.next_reply ~timeout_s:300.0 c with
            | Ok (Wire.Result { ok = true; json; _ }) ->
              lats := (Unix.gettimeofday () -. js) *. 1000.0 :: !lats;
              if hash_of json <> Some reference then
                fails := Printf.sprintf "%s: wrong hash in %s" name json :: !fails
            | Ok (Wire.Result { ok = false; json; _ }) ->
              fails := Printf.sprintf "%s: failed: %s" name json :: !fails
            | Ok _ -> fails := Printf.sprintf "%s: unexpected reply" name :: !fails
            | Error e -> fails := Printf.sprintf "%s: %s" name e.Bgr_error.message :: !fails)
          | Ok _ -> fails := Printf.sprintf "%s: unexpected reply" name :: !fails
          | Error e -> fails := Printf.sprintf "%s: %s" name e.Bgr_error.message :: !fails
        in
        submit ()
      done;
      Serve_client.close c;
      { latencies = !lats; shed = !shed; failures = !fails }
  in
  let reports =
    Array.init clients (fun k -> Domain.spawn (client k)) |> Array.map Domain.join
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* Stop the scraper before the drain: every counted sample was
     answered by a busy daemon. *)
  Atomic.set scrape_stop true;
  let scrapes, fresh_scrapes, scrape_fails = Domain.join scraper_domain in
  (* drain the daemon *)
  (match Serve_client.connect socket_path with
  | Ok c ->
    ignore (Serve_client.request ~timeout_s:30.0 c Wire.Shutdown);
    Serve_client.close c
  | Error _ -> ());
  let stats = Domain.join server in
  let lats =
    Array.of_list (List.concat_map (fun r -> r.latencies) (Array.to_list reports))
  in
  Array.sort compare lats;
  let shed = Array.fold_left (fun a r -> a + r.shed) 0 reports in
  let failures = List.concat_map (fun r -> r.failures) (Array.to_list reports) in
  let completed = Array.length lats in
  let throughput = float_of_int completed /. wall_s in
  let p50 = percentile lats 0.50 and p90 = percentile lats 0.90 and p99 = percentile lats 0.99 in
  Obs.Metrics.set g_throughput throughput;
  Obs.Metrics.set ~labels:[ ("quantile", "0.5") ] g_latency p50;
  Obs.Metrics.set ~labels:[ ("quantile", "0.9") ] g_latency p90;
  Obs.Metrics.set ~labels:[ ("quantile", "0.99") ] g_latency p99;
  Obs.Metrics.set g_shed (float_of_int shed);
  Printf.printf "completed %d jobs in %.2f s (%.2f jobs/s)\n" completed wall_s throughput;
  Printf.printf "latency ms: p50 %.0f  p90 %.0f  p99 %.0f\n" p50 p90 p99;
  Printf.printf "admission sheds: %d (all resubmitted and completed)\n" shed;
  Printf.printf
    "daemon stats: accepted %d, completed %d, failed %d, retried %d, rejected %d, worker \
     kills %d, quarantined %d\n"
    stats.Serve.s_accepted stats.Serve.s_completed stats.Serve.s_failed
    stats.Serve.s_retried stats.Serve.s_rejected stats.Serve.s_killed
    stats.Serve.s_quarantined;
  if scrape_ms > 0 then begin
    Printf.printf "SERVE_LOAD_SCRAPES total=%d fresh=%d\n" scrapes fresh_scrapes;
    if scrapes = 0 then Printf.printf "FAILURE: scraper took no samples\n";
    if fresh_scrapes < 2 then
      Printf.printf "FAILURE: stats plane never advanced mid-run (fresh=%d)\n" fresh_scrapes;
    if scrapes = 0 || fresh_scrapes < 2 then exit 1
  end;
  let failures = failures @ scrape_fails in
  List.iter (fun f -> Printf.printf "FAILURE: %s\n" f) failures;
  if failures <> [] then exit 1;
  if completed <> clients * jobs_per_client then begin
    Printf.printf "FAILURE: %d of %d jobs completed\n" completed (clients * jobs_per_client);
    exit 1
  end;
  Printf.printf "determinism: all %d results carry the uninterrupted hash %d\n" completed
    reference;
  let payload = Obs.Metrics.render_json () in
  Printf.printf "BENCH_METRICS_JSON %s\n" payload;
  (match bench_out_path () with
  | None -> ()
  | Some path -> (
    match
      let oc = open_out path in
      output_string oc payload;
      output_char oc '\n';
      close_out oc
    with
    | () -> Printf.printf "wrote metrics payload to %s\n" path
    | exception Sys_error msg ->
      Printf.eprintf "warning: cannot write bench metrics to %s: %s\n%!" path msg))
