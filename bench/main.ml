(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the synthetic suite, then times the router's
   core kernels with Bechamel.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- tables  -- only the paper tables
     dune exec bench/main.exe -- micro   -- only the microbenchmarks *)

let section title =
  Printf.printf "\n==== %s ====\n\n%!" title

(* Wall-clock (not Sys.time): with several domains routing, CPU time
   across all of them exceeds the elapsed time we are comparing. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let same_suite_results a b =
  List.for_all2
    (fun (x : Experiments.run) (y : Experiments.run) ->
      let same (m : Flow.measurement) (n : Flow.measurement) =
        m.Flow.m_delay_ps = n.Flow.m_delay_ps
        && m.Flow.m_area_mm2 = n.Flow.m_area_mm2
        && m.Flow.m_length_mm = n.Flow.m_length_mm
        && m.Flow.m_violations = n.Flow.m_violations
        && m.Flow.m_deletions = n.Flow.m_deletions
      in
      same x.Experiments.constrained y.Experiments.constrained
      && same x.Experiments.unconstrained y.Experiments.unconstrained)
    a b

let paper_tables () =
  section "Table 1 (paper: test bipolar circuits)";
  let cases = Suite.all () in
  Table.print (Experiments.table1 cases);
  Printf.printf "(paper's exact cell/net counts are unreadable in the transcription;\n";
  Printf.printf " sizes are 1994-plausible synthetic stand-ins, see DESIGN.md)\n";
  section "Table 2 (paper: experimental results)";
  let runs_seq, seq_s = timed (fun () -> Experiments.run_suite ~cases ~domains:1 ()) in
  let domains = Par.default_domains () in
  let runs, par_s = timed (fun () -> Experiments.run_suite ~cases ~domains ()) in
  let w, wo = Experiments.table2 runs in
  Table.print w;
  Table.print wo;
  Printf.printf
    "paper shape: constrained delay < unconstrained on most rows (0.56%%..23.5%%\n\
     improvements), area almost unchanged, constrained CPU a few x higher.\n";
  section "Table 3 (paper: difference from the lower bound)";
  Table.print (Experiments.table3 runs);
  Printf.printf
    "paper shape: constrained within ~10%% of the bound, unconstrained much\n\
     further; average reduction 17.6%% of the lower bound.\n";
  section "Suite wall-clock: sequential vs parallel";
  Printf.printf "full suite,  1 domain : %6.2f s wall\n" seq_s;
  Printf.printf "full suite, %2d domains: %6.2f s wall  (speedup %.2fx)\n" domains par_s
    (if par_s > 0.0 then seq_s /. par_s else nan);
  Printf.printf "determinism: parallel results are %s the sequential results\n"
    (if same_suite_results runs_seq runs then "identical to" else "DIFFERENT FROM (BUG!)");
  runs

let fig4 () =
  section "Fig. 4 (density chart of the most congested channel, C1P1)";
  let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
  let input = case.Suite.input in
  let fp0 = Flow.floorplan_of_input input in
  let dg = Delay_graph.build input.Flow.netlist in
  let order = Sta.static_net_order dg input.Flow.constraints in
  let fp, assignment, _ = Feed_insert.assign_with_insertion fp0 ~order in
  let sta = Sta.create dg input.Flow.constraints in
  let router = Router.create fp assignment (Some sta) in
  let dens = Router.density router in
  let channel =
    let best = ref 0 and best_v = ref (-1) in
    for c = 0 to Density.n_channels dens - 1 do
      if Density.cM dens ~channel:c > !best_v then begin
        best_v := Density.cM dens ~channel:c;
        best := c
      end
    done;
    !best
  in
  Printf.printf "Before edge deletion (redundant candidate graphs):\n";
  print_string (Experiments.fig4_of_density dens ~channel);
  ignore (Router.run router);
  Printf.printf "\nAfter routing (every remaining trunk is a bridge, d_M = d_m):\n";
  print_string (Experiments.fig4_of_density dens ~channel)

let ablations () =
  section "Ablations A1 (ordering), A3 (CL estimator), A4 (delay model), A5 (scheme), A6 (channel router), A7 (clock width), A8 (track bias) on C1P1";
  let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
  Table.print (Experiments.ablation_a1 case);
  Table.print (Experiments.ablation_a3 case);
  Table.print (Experiments.ablation_a4 case);
  Table.print (Experiments.ablation_a5 case);
  Table.print (Experiments.ablation_a6 case);
  Table.print (Experiments.ablation_a7 ());
  Table.print (Experiments.ablation_a8 case);
  let outcome = Flow.run case.Suite.input in
  Printf.printf
    "Elmore vs lumped wire delay on the final trees: worst per-net ratio %.3f\n     (close to 1: bipolar wires are wide, so \"the wire resistance is rather\n     small\" and the paper's capacitance-only model is adequate).\n"
    (Experiments.rc_vs_lumped_worst outcome)

let scaling () =
  section "Scaling: circuit size vs CPU and quality (constrained flow)";
  let t =
    Table.create ~title:"Scaling study (fresh circuits, P1 placement)"
      ~columns:[ "comb gates"; "nets"; "delay (ps)"; "gap over bound"; "CPU (s)" ]
  in
  List.iter
    (fun n_comb ->
      let params =
        { Circuit_gen.default_params with
          Circuit_gen.seed = Int64.of_int (1000 + n_comb);
          n_comb;
          n_ff = max 8 (n_comb / 8);
          n_levels = 5;
          n_constraints = 6 }
      in
      let netlist, raw = Circuit_gen.generate params in
      let rows = max 4 (int_of_float (sqrt (float_of_int n_comb) /. 2.0)) in
      let placed = Placement.place ~netlist ~n_rows:rows Placement.P1 in
      let input = Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints:raw placed in
      let constraints = Calibrate.against_reference_route ~input ~headroom:0.18 in
      let input = { input with Flow.constraints } in
      let outcome = Flow.run input in
      let m = outcome.Flow.o_measurement in
      Table.add_row t
        [ Table.fint n_comb;
          Table.fint (Netlist.n_nets netlist);
          Table.f1 m.Flow.m_delay_ps;
          Table.pct (Lower_bound.gap_percent ~delay_ps:m.Flow.m_delay_ps ~bound_ps:m.Flow.m_lower_bound_ps);
          Table.f2 m.Flow.m_cpu_s ])
    [ 100; 200; 400; 800 ];
  Table.print t

(* --- Bechamel microbenchmarks --------------------------------------- *)

let micro_tests () =
  let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
  let input = case.Suite.input in
  let fp0 = Flow.floorplan_of_input input in
  let dg = Delay_graph.build input.Flow.netlist in
  let order = Sta.static_net_order dg input.Flow.constraints in
  let fp, assignment, _ = Feed_insert.assign_with_insertion fp0 ~order in
  let sample_net =
    (* a multi-row net with a routing graph worth measuring *)
    let rec find net =
      if net >= Netlist.n_nets input.Flow.netlist then 0
      else begin
        let rg = Routing_graph.build fp assignment ~net in
        if Ugraph.n_edges_live rg.Routing_graph.graph >= 12 then net else find (net + 1)
      end
    in
    find 0
  in
  let rg = Routing_graph.build fp assignment ~net:sample_net in
  let open Bechamel in
  [ (* one Test.make per paper table: how long regenerating each row
       set costs (T2/T3 share the suite runs, so T1's stats pass stands
       in for the cheap table and the flow benches below cover the
       expensive ones) *)
    Test.make ~name:"table1.stats"
      (Staged.stage (fun () -> Experiments.table1 [ case ]));
    Test.make ~name:"routing_graph.build"
      (Staged.stage (fun () -> Routing_graph.build fp assignment ~net:sample_net));
    Test.make ~name:"bridges"
      (Staged.stage (fun () -> Bridges.bridges rg.Routing_graph.graph));
    Test.make ~name:"tentative_tree" (Staged.stage (fun () -> Routing_graph.tentative_tree rg));
    Test.make ~name:"delay_graph.build"
      (Staged.stage (fun () -> Delay_graph.build input.Flow.netlist));
    Test.make ~name:"sta.refresh"
      (let sta = Sta.create dg input.Flow.constraints in
       Staged.stage (fun () -> Sta.refresh sta));
    Test.make ~name:"feedthrough.assign"
      (Staged.stage (fun () -> Feedthrough.assign fp0 ~order));
    Test.make ~name:"initial_route(C1P1)"
      (Staged.stage (fun () ->
           let sta = Sta.create dg input.Flow.constraints in
           let router = Router.create fp assignment (Some sta) in
           Router.initial_route router));
    Test.make ~name:"channel_route(worst)"
      (let sta = Sta.create dg input.Flow.constraints in
       let router = Router.create fp assignment (Some sta) in
       ignore (Router.run router);
       let channel =
         let dens = Router.density router in
         let best = ref 0 and best_v = ref (-1) in
         for c = 0 to Density.n_channels dens - 1 do
           if Density.cM dens ~channel:c > !best_v then begin
             best_v := Density.cM dens ~channel:c;
             best := c
           end
         done;
         !best
       in
       let segs =
         List.map
           (fun (cn : Router.chan_net) ->
             { Channel_router.seg_net = cn.Router.cn_net;
               seg_lo = cn.Router.cn_lo;
               seg_hi = cn.Router.cn_hi;
               seg_pins =
                 List.map
                   (fun (p : Router.chan_pin) ->
                     { Channel_router.pin_x = p.Router.cp_x;
                       pin_from_top = p.Router.cp_from_top })
                   cn.Router.cn_pins;
               seg_width = cn.Router.cn_pitch })
           (Router.channel_nets router ~channel)
       in
       Staged.stage (fun () -> Channel_router.route segs)) ]

let micro () =
  section "Bechamel microbenchmarks (ns/run, OLS on monotonic clock)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let grouped = Test.make_grouped ~name:"bgr" ~fmt:"%s/%s" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  List.iter
    (fun name ->
      let ols_result = Hashtbl.find results name in
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
    names

(* Where to persist the metrics payload: --bench-out PATH (or
   --bench-out=PATH) anywhere on the command line, else the
   BGR_BENCH_OUT environment variable, else nowhere. *)
let bench_out_path () =
  let from_argv = ref None in
  Array.iteri
    (fun i a ->
      if a = "--bench-out" && i + 1 < Array.length Sys.argv then
        from_argv := Some Sys.argv.(i + 1)
      else if String.length a > 12 && String.sub a 0 12 = "--bench-out=" then
        from_argv := Some (String.sub a 12 (String.length a - 12)))
    Sys.argv;
  match !from_argv with Some p -> Some p | None -> Sys.getenv_opt "BGR_BENCH_OUT"

(* Per-suite observability: phase timings of the runs above, plus the
   whole registry on one machine-greppable line so BENCH_*.json
   trajectories can carry phase-level timing alongside wall-clock. *)
let obs_summary () =
  section "Phase-level metrics (orchestrator-side spans of the runs above)";
  Table.print (Obs_report.phase_durations ());
  let payload = Obs.Metrics.render_json () in
  Printf.printf "BENCH_METRICS_JSON %s\n" payload;
  match bench_out_path () with
  | None -> ()
  | Some path -> (
    match
      let oc = open_out path in
      output_string oc payload;
      output_char oc '\n';
      close_out oc
    with
    | () -> Printf.printf "wrote metrics payload to %s\n" path
    | exception Sys_error msg ->
      Printf.eprintf "warning: cannot write bench metrics to %s: %s\n%!" path msg)

let () =
  let what =
    (* the first operand selects the suite; --flags are not a suite name *)
    if Array.length Sys.argv > 1 && not (String.length Sys.argv.(1) >= 2 && String.sub Sys.argv.(1) 0 2 = "--")
    then Sys.argv.(1)
    else "all"
  in
  Obs.enable ();
  let t0 = Sys.time () in
  if what = "all" || what = "tables" then begin
    ignore (paper_tables ());
    fig4 ();
    ablations ()
  end;
  if what = "all" || what = "scaling" then scaling ();
  if what = "all" || what = "micro" then micro ();
  obs_summary ();
  Printf.printf "\ntotal bench CPU: %.1f s\n" (Sys.time () -. t0)
